#include "net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <deque>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

#include "common/logging.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "serve/wire.hpp"

namespace ftsim {

namespace {

double
monotonicMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

bool
futureReady(const std::shared_future<PlanResponse>& future)
{
    return future.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

/** Blank lines are not requests (mirrors ftsim_serve). */
bool
isBlank(const std::string& line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

/** Poll-loop internals: every member is loop-thread-owned except the
 *  stop flag, the wake pipe's write end, and the atomics. */
struct NetServer::Impl {
    /** One response slot awaiting write-back, in request order. */
    struct Pending {
        std::string id;
        /** The request arrived as a binary frame; its answer goes
         *  back binary too (a response always follows its request's
         *  format). */
        bool binary = false;
        /** True for answers produced without the service (protocol
         *  errors): the bytes are ready at enqueue time. */
        bool immediate = false;
        /** Complete JSON line (no '\n') or complete binary frame. */
        std::string immediateLine;
        std::shared_future<PlanResponse> future;
    };

    /** One open connection and its per-connection state. */
    struct Conn {
        Connection socket;
        /** SubmitOptions::source label ("peer#n") — the service's
         *  per-connection stats bucket. */
        std::string label;
        WireFramer framer;
        /** Answers owed to this connection, oldest first. Write-back
         *  order == request order, whatever order workers finish in. */
        std::deque<Pending> pending;
        std::string out;
        std::size_t outOff = 0;
        bool inputClosed = false;
        bool closeAfterFlush = false;
        /** Hard socket error: remove without flushing. */
        bool dead = false;
        double lastActiveMs = 0.0;

        Conn(Connection s, std::string l, std::size_t max_line,
             double now)
            : socket(std::move(s)), label(std::move(l)),
              framer(max_line), lastActiveMs(now)
        {
        }

        bool flushed() const { return outOff >= out.size(); }

        bool drained() const { return pending.empty() && flushed(); }
    };

    explicit Impl(NetServerConfig cfg)
        : config(std::move(cfg)),
          stats(config.service.statsRegistry
                    ? config.service.statsRegistry
                    : std::make_shared<StatsRegistry>()),
          accepted(stats->counter("net.conn.accepted")),
          closed(stats->counter("net.conn.closed")),
          requests(stats->counter("net.requests")),
          responses(stats->counter("net.responses")),
          protocolErrors(stats->counter("net.protocol_errors")),
          oversized(stats->counter("net.oversized_lines")),
          idleClosed(stats->counter("net.idle_closed")),
          forcedClosed(stats->counter("net.forced_closed")),
          binaryRequests(stats->counter("net.wire.requests")),
          wirePoisoned(stats->counter("net.wire.poisoned"))
    {
        // One registry covers both layers of a shard: the service
        // publishes serve.*/planner.* into the same instance this
        // front end publishes net.* into, so a single `stats` scrape
        // (or dump file) is the whole process.
        config.service.statsRegistry = stats;
        service = std::make_unique<PlanService>(config.service);
        int fds[2] = {-1, -1};
        if (::pipe(fds) != 0)
            fatal("NetServer: cannot create wake pipe");
        setNonBlocking(fds[0]);
        setNonBlocking(fds[1]);
        wakeRead = fds[0];
        wakeWrite = fds[1];
    }

    ~Impl()
    {
        // Drain the service *before* closing the wake pipe: worker
        // tasks still finishing (a dead connection's orphaned
        // requests) fire notify callbacks that write to it.
        service.reset();
        if (wakeRead >= 0)
            ::close(wakeRead);
        if (wakeWrite >= 0)
            ::close(wakeWrite);
    }

    /** Async-signal-safe: one non-blocking write; a full pipe means a
     *  wake is already pending, so EAGAIN is success. */
    void wake()
    {
        const char byte = 1;
        [[maybe_unused]] ssize_t n = ::write(wakeWrite, &byte, 1);
    }

    void drainWakePipe()
    {
        char buf[256];
        while (::read(wakeRead, buf, sizeof(buf)) > 0) {
        }
    }

    /** The loop's timer clock: injected (tests) or real monotonic. */
    double clockMs() const
    {
        return config.clock ? config.clock() : monotonicMs();
    }

    void acceptPending(double now)
    {
        while (conns.size() < config.maxConnections) {
            Connection socket = listener.accept();
            if (!socket.valid())
                break;
            if (config.sendBufferBytes > 0) {
                const int bytes = config.sendBufferBytes;
                ::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDBUF,
                             &bytes, sizeof(bytes));
            }
            accepted.inc();
            const std::string label =
                strCat(socket.peer(), '#', accepted.load());
            conns.push_back(std::make_unique<Conn>(
                std::move(socket), label, config.maxLineBytes, now));
        }
    }

    void submitRequest(Conn& conn, const PlanRequest& request,
                       bool binary)
    {
        requests.inc();
        if (binary)
            binaryRequests.inc();
        SubmitOptions options;
        options.source = conn.label;
        options.notify = [this] { wake(); };
        Pending slot;
        slot.id = request.id;
        slot.binary = binary;
        slot.future = service->submit(request, options);
        conn.pending.push_back(std::move(slot));
    }

    void answerImmediate(Conn& conn, bool binary, std::string bytes)
    {
        Pending slot;
        slot.binary = binary;
        slot.immediate = true;
        slot.immediateLine = std::move(bytes);
        conn.pending.push_back(std::move(slot));
    }

    void handleFrame(Conn& conn, WireFramer::Frame& frame)
    {
        if (frame.binary) {
            Result<WireMessage> decoded =
                decodeWirePayload(frame.payload);
            if (!decoded.ok()) {
                protocolErrors.inc();
                answerImmediate(conn, true,
                                encodeProtocolErrorFrame(
                                    "", decoded.error().message));
                return;
            }
            if (decoded.value().type != WireMsg::Request) {
                protocolErrors.inc();
                answerImmediate(
                    conn, true,
                    encodeProtocolErrorFrame(
                        "", "expected a request frame"));
                return;
            }
            submitRequest(conn, decoded.value().request, true);
            return;
        }
        if (frame.overflow) {
            oversized.inc();
            protocolErrors.inc();
            answerImmediate(conn, false,
                            writeProtocolError(
                                "", strCat("request line exceeds ",
                                           config.maxLineBytes,
                                           " bytes")));
            return;
        }
        if (isBlank(frame.payload))
            return;
        Result<PlanRequest> request = parsePlanRequest(frame.payload);
        if (!request) {
            protocolErrors.inc();
            answerImmediate(
                conn, false,
                writeProtocolError("", request.error().message));
            return;
        }
        submitRequest(conn, request.value(), false);
    }

    /** Binary framing damage: answer one final error frame, then
     *  close — a poisoned binary stream has no resync point. */
    void killPoisonedConn(Conn& conn, const std::string& reason)
    {
        wirePoisoned.inc();
        protocolErrors.inc();
        answerImmediate(conn, true,
                        encodeProtocolErrorFrame(
                            "", strCat("bad frame: ", reason)));
        conn.inputClosed = true;
        conn.closeAfterFlush = true;
    }

    void readInput(Conn& conn, double now)
    {
        char buf[16384];
        while (!conn.inputClosed && !conn.dead) {
            const IoResult io = conn.socket.readSome(buf, sizeof(buf));
            if (io.status == IoStatus::Ok) {
                conn.lastActiveMs = now;
                conn.framer.feed(buf, io.bytes);
                WireFramer::Frame frame;
                while (conn.framer.next(frame))
                    handleFrame(conn, frame);
                if (conn.framer.poisoned())
                    killPoisonedConn(conn,
                                     conn.framer.poisonReason());
            } else if (io.status == IoStatus::WouldBlock) {
                break;
            } else if (io.status == IoStatus::Eof) {
                // Half-close: the peer finished sending; answer
                // everything already admitted, flush, then close.
                if (conn.framer.midBinaryFrame()) {
                    // EOF inside a binary frame: the peer truncated
                    // it. Same containment as a bad header.
                    killPoisonedConn(conn, "truncated frame at EOF");
                }
                conn.inputClosed = true;
                conn.closeAfterFlush = true;
            } else {
                conn.dead = true;
            }
        }
    }

    /** Moves ready answers (in request order) into the write buffer. */
    void pump(Conn& conn, double now)
    {
        while (!conn.pending.empty()) {
            Pending& slot = conn.pending.front();
            std::string bytes;
            if (slot.immediate) {
                bytes = std::move(slot.immediateLine);
            } else if (futureReady(slot.future)) {
                PlanResponse response = slot.future.get();
                response.id = slot.id;  // Coalesced futures share ids.
                bytes = slot.binary ? encodeResponseFrame(response)
                                    : writePlanResponse(response);
            } else {
                break;  // Request order: never skip past a slot.
            }
            conn.out += bytes;
            if (!slot.binary)
                conn.out += '\n';  // Binary frames self-delimit.
            conn.pending.pop_front();
            conn.lastActiveMs = now;
            responses.inc();
        }
    }

    void flush(Conn& conn)
    {
        while (!conn.flushed() && !conn.dead) {
            const IoResult io =
                conn.socket.writeSome(conn.out.data() + conn.outOff,
                                      conn.out.size() - conn.outOff);
            if (io.status == IoStatus::Ok) {
                conn.outOff += io.bytes;
            } else if (io.status == IoStatus::WouldBlock) {
                return;  // POLLOUT will resume this.
            } else {
                conn.dead = true;  // Peer is gone; answers die with it.
            }
        }
        if (conn.flushed()) {
            conn.out.clear();
            conn.outOff = 0;
        }
    }

    void loop()
    {
        std::vector<pollfd> fds;
        std::vector<Conn*> polled;
        bool stop_seen = false;
        double drain_start_ms = 0.0;
        while (true) {
            const bool stopping = stopRequested.load();
            if (stopping && !stop_seen) {
                stop_seen = true;
                drain_start_ms = clockMs();
                // Graceful drain: no new connections, no new input —
                // but every admitted request still answers and every
                // answer still flushes before its connection closes.
                listener.close();
                for (auto& conn : conns) {
                    conn->inputClosed = true;
                    conn->closeAfterFlush = true;
                }
            }

            // Sweep closed connections.
            for (auto it = conns.begin(); it != conns.end();) {
                Conn& conn = **it;
                const bool done =
                    conn.dead ||
                    (conn.closeAfterFlush && conn.drained());
                if (done) {
                    closed.inc();
                    it = conns.erase(it);
                } else {
                    ++it;
                }
            }
            if (stop_seen && conns.empty())
                break;

            fds.clear();
            polled.clear();
            fds.push_back({wakeRead, POLLIN, 0});
            const bool accepting = !stop_seen && listener.valid() &&
                                   conns.size() < config.maxConnections;
            if (accepting)
                fds.push_back({listener.fd(), POLLIN, 0});
            for (auto& conn : conns) {
                short events = 0;
                if (!conn->inputClosed)
                    events |= POLLIN;
                if (!conn->flushed())
                    events |= POLLOUT;
                fds.push_back({conn->socket.fd(), events, 0});
                polled.push_back(conn.get());
            }

            int timeout = -1;
            // A drained peer that stopped reading never raises a
            // poll event, so the deadline must be re-checked on a
            // short real-time tick (the clock itself may be virtual).
            if (stop_seen && config.drainDeadlineMs > 0.0)
                timeout = 20;
            if (config.idleTimeoutMs > 0.0 && !stop_seen) {
                const double now = clockMs();
                double nearest = -1.0;
                for (auto& conn : conns) {
                    if (!conn->drained())
                        continue;  // Busy connections never idle out.
                    const double deadline =
                        conn->lastActiveMs + config.idleTimeoutMs;
                    if (nearest < 0.0 || deadline < nearest)
                        nearest = deadline;
                }
                if (nearest >= 0.0)
                    timeout = static_cast<int>(
                        std::max(1.0, nearest - now + 1.0));
            }

            const int rc = ::poll(fds.data(),
                                  static_cast<nfds_t>(fds.size()),
                                  timeout);
            const double now = clockMs();
            if (rc < 0 && errno != EINTR)
                fatal("NetServer: poll() failed");

            std::size_t index = 0;
            if (fds[index].revents & POLLIN)
                drainWakePipe();
            ++index;
            if (accepting) {
                if (fds[index].revents & POLLIN)
                    acceptPending(now);
                ++index;
            }
            for (std::size_t c = 0; c < polled.size(); ++c, ++index) {
                Conn& conn = *polled[c];
                const short revents = fds[index].revents;
                if (revents & (POLLERR | POLLNVAL))
                    conn.dead = true;
                if (!conn.dead && (revents & (POLLIN | POLLHUP)))
                    readInput(conn, now);
            }

            // Pump + flush every connection each round: the wake pipe
            // says "some answer somewhere is ready", not which one.
            for (auto& conn : conns) {
                if (conn->dead)
                    continue;
                pump(*conn, now);
                flush(*conn);
            }

            // Drain deadline: connections that still owe bytes (or
            // answers) this long after the stop request are cut off —
            // after the flush above gave them one more chance. Their
            // unflushed answers die with them; the alternative is a
            // shutdown a stalled peer controls.
            if (stop_seen && config.drainDeadlineMs > 0.0 &&
                now - drain_start_ms >= config.drainDeadlineMs) {
                for (auto& conn : conns) {
                    if (conn->dead || conn->drained())
                        continue;
                    forcedClosed.inc();
                    conn->dead = true;
                }
            }

            // Idle sweep (only quiet, fully-drained connections).
            if (config.idleTimeoutMs > 0.0 && !stop_seen) {
                for (auto& conn : conns) {
                    if (conn->dead || conn->closeAfterFlush ||
                        !conn->drained())
                        continue;
                    if (now - conn->lastActiveMs >=
                        config.idleTimeoutMs) {
                        idleClosed.inc();
                        conn->closeAfterFlush = true;
                        conn->inputClosed = true;
                    }
                }
            }
        }
        listener.close();
    }

    NetServerConfig config;
    /** Shard-wide registry, shared with the fronted service (declared
     *  before the cells below that reference into it). */
    std::shared_ptr<StatsRegistry> stats;
    /** unique_ptr so ~Impl can drain it before the wake pipe closes. */
    std::unique_ptr<PlanService> service;
    TcpListener listener;
    int wakeRead = -1;
    int wakeWrite = -1;
    std::atomic<bool> stopRequested{false};
    std::vector<std::unique_ptr<Conn>> conns;

    // Registry cells under `net.*`, bumped at the same program points
    // as the pre-registry atomics they replace (NetServerStats is a
    // view over them, so pinned values are unchanged).
    StatsCounter& accepted;
    StatsCounter& closed;
    StatsCounter& requests;
    StatsCounter& responses;
    StatsCounter& protocolErrors;
    StatsCounter& oversized;
    StatsCounter& idleClosed;
    StatsCounter& forcedClosed;
    StatsCounter& binaryRequests;
    StatsCounter& wirePoisoned;
};

NetServer::NetServer(NetServerConfig config)
    : impl_(std::make_unique<Impl>(std::move(config)))
{
}

NetServer::~NetServer()
{
    stop();
}

Result<bool>
NetServer::bindListener()
{
    Result<TcpListener> listener =
        TcpListener::bind(impl_->config.host, impl_->config.port);
    if (!listener)
        return listener.error();
    impl_->listener = std::move(listener.value());
    return true;
}

std::uint16_t
NetServer::port() const
{
    return impl_->listener.port();
}

void
NetServer::run()
{
    impl_->loop();
    loop_done_.store(true);
}

Result<bool>
NetServer::start()
{
    Result<bool> bound = bindListener();
    if (!bound)
        return bound;
    loop_thread_ = std::thread([this] { run(); });
    return true;
}

void
NetServer::requestStop()
{
    impl_->stopRequested.store(true);
    impl_->wake();
}

void
NetServer::stop()
{
    requestStop();
    if (loop_thread_.joinable())
        loop_thread_.join();
}

PlanService&
NetServer::service()
{
    return *impl_->service;
}

const std::shared_ptr<StatsRegistry>&
NetServer::statsRegistry() const
{
    return impl_->stats;
}

NetServerStats
NetServer::stats() const
{
    NetServerStats out;
    out.connectionsAccepted = impl_->accepted.load();
    out.connectionsClosed = impl_->closed.load();
    out.connectionsOpen =
        out.connectionsAccepted - out.connectionsClosed;
    out.requests = impl_->requests.load();
    out.responses = impl_->responses.load();
    out.protocolErrors = impl_->protocolErrors.load();
    out.oversizedLines = impl_->oversized.load();
    out.idleClosed = impl_->idleClosed.load();
    out.forcedClosed = impl_->forcedClosed.load();
    out.binaryRequests = impl_->binaryRequests.load();
    out.wirePoisoned = impl_->wirePoisoned.load();
    return out;
}

}  // namespace ftsim
