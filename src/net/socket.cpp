#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.hpp"

namespace ftsim {

namespace {

std::string
errnoText()
{
    return std::strerror(errno);
}

/** Resolves host:port to an IPv4 sockaddr via getaddrinfo. */
Result<sockaddr_in>
resolve(const std::string& host, std::uint16_t port)
{
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* found = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &found);
    if (rc != 0 || found == nullptr)
        return Error{ErrorCode::InvalidArgument,
                     strCat("cannot resolve host '", host,
                            "': ", ::gai_strerror(rc))};
    sockaddr_in addr{};
    std::memcpy(&addr, found->ai_addr, sizeof(addr));
    addr.sin_port = htons(port);
    ::freeaddrinfo(found);
    return addr;
}

std::string
peerLabel(const sockaddr_in& addr)
{
    char ip[INET_ADDRSTRLEN] = "?";
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    return strCat(ip, ':', ntohs(addr.sin_port));
}

}  // namespace

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) >= 0;
}

// ---- Connection ---------------------------------------------------------

Connection::Connection(int fd, std::string peer)
    : fd_(fd), peer_(std::move(peer))
{
}

Connection::~Connection()
{
    close();
}

Connection::Connection(Connection&& other) noexcept
    : fd_(other.fd_), peer_(std::move(other.peer_))
{
    other.fd_ = -1;
}

Connection&
Connection::operator=(Connection&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        peer_ = std::move(other.peer_);
        other.fd_ = -1;
    }
    return *this;
}

Result<Connection>
Connection::connectTo(const std::string& host, std::uint16_t port)
{
    Result<sockaddr_in> addr = resolve(host, port);
    if (!addr)
        return addr.error();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{ErrorCode::InvalidArgument,
                     strCat("socket(): ", errnoText())};
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                  sizeof(addr.value())) != 0) {
        const std::string text = errnoText();
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     strCat("cannot connect to ", host, ':', port, ": ",
                            text)};
    }
    // Request/response lines are small; without NODELAY, Nagle delays
    // each pipelined line behind the previous ACK.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Connection(fd, strCat(host, ':', port));
}

Result<Connection>
Connection::connectStart(const std::string& host, std::uint16_t port)
{
    Result<sockaddr_in> addr = resolve(host, port);
    if (!addr)
        return addr.error();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{ErrorCode::InvalidArgument,
                     strCat("socket(): ", errnoText())};
    if (!setNonBlocking(fd)) {
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     "cannot make socket non-blocking"};
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
                  sizeof(addr.value())) != 0 &&
        errno != EINPROGRESS) {
        const std::string text = errnoText();
        ::close(fd);
        return Error{ErrorCode::Unavailable,
                     strCat("cannot connect to ", host, ':', port, ": ",
                            text)};
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Connection(fd, strCat(host, ':', port));
}

Result<bool>
Connection::finishConnect()
{
    if (fd_ < 0)
        return Error{ErrorCode::Unavailable, "connection not open"};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0)
        err = errno;
    if (err != 0) {
        close();
        return Error{ErrorCode::Unavailable,
                     strCat("cannot connect to ", peer_, ": ",
                            std::strerror(err))};
    }
    return true;
}

IoResult
Connection::readSome(char* buf, std::size_t cap)
{
    if (fd_ < 0)
        return {IoStatus::Error, 0};
    const ssize_t n = ::read(fd_, buf, cap);
    if (n > 0)
        return {IoStatus::Ok, static_cast<std::size_t>(n)};
    if (n == 0)
        return {IoStatus::Eof, 0};
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return {IoStatus::WouldBlock, 0};
    return {IoStatus::Error, 0};
}

IoResult
Connection::writeSome(const char* buf, std::size_t len)
{
    if (fd_ < 0)
        return {IoStatus::Error, 0};
    // MSG_NOSIGNAL: a peer that closed mid-write must produce EPIPE,
    // not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n >= 0)
        return {IoStatus::Ok, static_cast<std::size_t>(n)};
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)
        return {IoStatus::WouldBlock, 0};
    return {IoStatus::Error, 0};
}

void
Connection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

// ---- TcpListener --------------------------------------------------------

TcpListener::~TcpListener()
{
    close();
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_)
{
    other.fd_ = -1;
}

TcpListener&
TcpListener::operator=(TcpListener&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
    }
    return *this;
}

Result<TcpListener>
TcpListener::bind(const std::string& host, std::uint16_t port,
                  int backlog)
{
    Result<sockaddr_in> addr = resolve(host, port);
    if (!addr)
        return addr.error();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Error{ErrorCode::InvalidArgument,
                     strCat("socket(): ", errnoText())};
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr.value()),
               sizeof(addr.value())) != 0 ||
        ::listen(fd, backlog) != 0 || !setNonBlocking(fd)) {
        const std::string text = errnoText();
        ::close(fd);
        return Error{ErrorCode::InvalidArgument,
                     strCat("cannot listen on ", host, ':', port, ": ",
                            text)};
    }
    TcpListener listener;
    listener.fd_ = fd;
    // Read the bound port back: with port 0 the kernel picked one.
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                      &bound_len) == 0)
        listener.port_ = ntohs(bound.sin_port);
    else
        listener.port_ = port;
    return listener;
}

Connection
TcpListener::accept()
{
    if (fd_ < 0)
        return Connection();
    sockaddr_in peer{};
    socklen_t peer_len = sizeof(peer);
    const int fd =
        ::accept(fd_, reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (fd < 0)
        return Connection();  // WouldBlock and hard errors alike.
    if (!setNonBlocking(fd)) {
        ::close(fd);
        return Connection();
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return Connection(fd, peerLabel(peer));
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace ftsim
