#ifndef FTSIM_GPUSIM_KERNEL_HPP
#define FTSIM_GPUSIM_KERNEL_HPP

/**
 * @file
 * Kernel descriptors and simulated per-kernel metrics.
 *
 * A KernelDesc is the unit the workload builder emits and the execution
 * model times: a named operation with a FLOP count, DRAM traffic, a
 * parallelism width (independent thread blocks), and tags locating it in
 * the training step (stage) and the model (layer class). The tags are
 * what the paper's three breakdown levels aggregate over (Figs. 4-6).
 */

#include <cstddef>
#include <cstdint>
#include <string>

namespace ftsim {

/** Functional class of a kernel; selects the throughput model. */
enum class KernelKind : std::uint8_t {
    MatMul,       ///< Tensor-core GEMM.
    Attention,    ///< Fused flash-attention kernel.
    Dequant,      ///< 4-bit block de-quantization (QLoRA).
    Softmax,      ///< Row softmax.
    TopK,         ///< Expert top-k selection.
    Sigmoid,      ///< Elementwise sigmoid (BlackMamba router).
    Gelu,         ///< Elementwise GELU.
    Silu,         ///< Elementwise SiLU.
    Elementwise,  ///< Other elementwise (residual add, mults, masks).
    Norm,         ///< RMS/input layer normalization.
    Conv,         ///< Depthwise causal conv1d (Mamba).
    Scan,         ///< Selective-scan recurrence (Mamba).
    Optimizer,    ///< AdamW state update passes.
};

/** Human-readable name of a kernel kind. */
const char* kernelKindName(KernelKind kind);

/** Model-layer class a kernel belongs to (Fig. 5 grouping). */
enum class LayerClass : std::uint8_t {
    InputNorm,      ///< Mixtral input normalization.
    Attention,      ///< Mixtral self-attention.
    PostAttnNorm,   ///< Mixtral post-attention normalization.
    MoE,            ///< MoE layer (router + experts) — both models.
    RmsNorm,        ///< BlackMamba RMS norms.
    Mamba,          ///< BlackMamba mamba layer.
    Head,           ///< Embedding / LM head.
    OptimizerState, ///< Optimizer update work.
};

/** Number of LayerClass values (dense array sizing). */
inline constexpr std::size_t kLayerClassCount = 8;
static_assert(static_cast<std::size_t>(LayerClass::OptimizerState) + 1 ==
                  kLayerClassCount,
              "update kLayerClassCount when extending LayerClass");

/** Human-readable name of a layer class. */
const char* layerClassName(LayerClass layer);

/** Training-step stage (Fig. 4 grouping). */
enum class Stage : std::uint8_t {
    Forward,
    Backward,   ///< Includes gradient-checkpoint recomputation.
    Optimizer,
};

/** Human-readable name of a stage. */
const char* stageName(Stage stage);

/** One kernel instance to be timed. */
struct KernelDesc {
    std::string name;        ///< Paper-style name, e.g. "matmul(w1)".
    KernelKind kind = KernelKind::MatMul;
    LayerClass layer = LayerClass::MoE;
    Stage stage = Stage::Forward;
    double flops = 0.0;      ///< Floating (or integer-ALU) operations.
    double bytes = 0.0;      ///< DRAM bytes moved.
    double tiles = 1.0;      ///< Independent thread blocks.
    /**
     * Intra-tile efficiency in (0, 1]: fraction of the kind's peak a
     * launch can reach regardless of occupancy (e.g. tensor-core tiles
     * underfilled by skinny GEMMs at small batch).
     */
    double efficiency = 1.0;
    /** Static multiplicity: identical launches this desc stands for. */
    double count = 1.0;
};

/**
 * Normalizes a kernel name for cross-stage aggregation: strips the
 * " (recompute)" suffix and every "_bwd" marker so "matmul(w1_bwd)"
 * folds into "matmul(w1)" (the paper's Fig. 6 merges passes the same
 * way).
 */
std::string normalizeKernelName(const std::string& name);

/** Simulated execution metrics of one kernel (ncu-style counters). */
struct KernelMetrics {
    /** Wall time for all `count` launches, seconds. */
    double seconds = 0.0;
    /** SM utilization in percent (paper Fig. 9 metric). */
    double smUtilPct = 0.0;
    /** DRAM bandwidth utilization in percent (paper Fig. 10 metric). */
    double dramUtilPct = 0.0;
    /** Achieved FLOP/s across the launches. */
    double achievedFlops = 0.0;
    /** True when limited by memory bandwidth rather than compute. */
    bool memoryBound = false;
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_KERNEL_HPP
