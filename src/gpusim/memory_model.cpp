#include "gpusim/memory_model.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace ftsim {

ActivationConstants
MemoryModel::constantsFor(const ModelSpec& spec)
{
    // Fitted against the paper's measured Table III (A40, 48 GB, seq =
    // dataset medians 79 / 174); see the memory-model tests for the
    // verification of all eight cells.
    ActivationConstants c;
    if (spec.backbone == BackboneKind::Attention) {
        c.fixedPerQueryMB = 350.0;
        c.perTokenMB = 76.44;     // Dense basis (all experts active).
        c.perTokenSqMB = 0.0923;
        c.moeFraction = 0.9;
    } else {
        c.fixedPerQueryMB = 195.0;
        c.perTokenMB = 16.4;
        c.perTokenSqMB = 0.0774;
        c.moeFraction = 1.0;
    }
    return c;
}

double
MemoryModel::perQueryBytes(const ModelSpec& spec, std::size_t seq_len,
                           bool sparse)
{
    if (seq_len == 0)
        fatal("MemoryModel::perQueryBytes: zero sequence length");
    const ActivationConstants c = constantsFor(spec);
    const double s = static_cast<double>(seq_len);
    const double sparsity = spec.sparsity(sparse);  // k / E.
    const double moe_scale =
        (1.0 - c.moeFraction) + c.moeFraction * sparsity;
    const double variable_mb =
        (c.perTokenMB * s + c.perTokenSqMB * s * s) * moe_scale;
    return (c.fixedPerQueryMB + variable_mb) * 1e6;
}

double
MemoryModel::gradientBytes(const ModelSpec& spec)
{
    // Full fine-tuning keeps an fp16 gradient per weight; LoRA keeps
    // fp32 gradients for the (small) adapters.
    const double bytes_per_grad =
        spec.strategy == FineTuneStrategy::FullFineTune ? 2.0 : 4.0;
    return static_cast<double>(spec.trainableParams()) * bytes_per_grad;
}

MemoryBreakdown
MemoryModel::analyze(const ModelSpec& spec, const GpuSpec& gpu,
                     std::size_t seq_len, bool sparse)
{
    MemoryBreakdown mb;
    mb.weightBytes = spec.weightMemoryBytes();
    mb.optimizerBytes = spec.optimizerStateBytes();
    mb.gradientBytes = gradientBytes(spec);
    mb.reservedBytes = kReservedBytes;
    mb.usableBytes = gpu.memBytes() - mb.weightBytes - mb.optimizerBytes -
                     mb.gradientBytes - mb.reservedBytes;
    mb.perQueryBytes = perQueryBytes(spec, seq_len, sparse);
    if (mb.usableBytes <= 0.0) {
        mb.maxBatchSize = 0;  // Model does not fit at all.
        return mb;
    }
    mb.maxBatchSize =
        static_cast<int>(std::floor(mb.usableBytes / mb.perQueryBytes));
    return mb;
}

int
MemoryModel::maxBatchSize(const ModelSpec& spec, const GpuSpec& gpu,
                          std::size_t seq_len, bool sparse)
{
    return analyze(spec, gpu, seq_len, sparse).maxBatchSize;
}

}  // namespace ftsim
