#ifndef FTSIM_GPUSIM_MEMORY_MODEL_HPP
#define FTSIM_GPUSIM_MEMORY_MODEL_HPP

/**
 * @file
 * GPU memory-capacity model: what fits, and the maximum batch size.
 *
 * Accounting (all decimal bytes, the paper's convention):
 *
 *   usable = capacity - weights - optimizer state - gradients - reserved
 *
 * with weights from the ModelSpec (4-bit for QLoRA Mixtral, fp16 for
 * BlackMamba), AdamW moments (2 x fp32) over trainable parameters,
 * fp16-sized gradients over trainable parameters for full fine-tuning
 * (fp32 for the small LoRA adapters), and a fixed framework/CUDA-context
 * reservation.
 *
 * Per-query activation memory is modelled as
 *
 *   bytes(query) = fixed + (a * seq + e * seq^2) * ((1-m) + m * k/E)
 *
 * The linear term covers residual-stream activations, the quadratic term
 * covers attention maps and padding amplification, and m is the fraction
 * of activation memory living inside the MoE (so sparsity k/E scales it —
 * the same structural assumption as the paper's Eq. 1). The constants
 * (a, e, fixed, m) are fitted per model family against the paper's
 * empirically measured Table III, exactly as the paper fits C0/C1; this
 * model is the *ground truth generator* that Eq. 1 is then fitted to
 * (Fig. 13).
 */

#include <cstddef>

#include "gpusim/gpu_spec.hpp"
#include "models/spec.hpp"

namespace ftsim {

/** Fitted activation-memory constants for one model family. */
struct ActivationConstants {
    double fixedPerQueryMB = 0.0;  ///< Fixed per-query overhead, MB.
    double perTokenMB = 0.0;       ///< Linear coefficient a, MB/token.
    double perTokenSqMB = 0.0;     ///< Quadratic coefficient e, MB/token^2.
    double moeFraction = 0.9;      ///< m: activation share inside MoE.
};

/** Full memory accounting for one configuration. */
struct MemoryBreakdown {
    double weightBytes = 0.0;
    double optimizerBytes = 0.0;
    double gradientBytes = 0.0;
    double reservedBytes = 0.0;
    double usableBytes = 0.0;   ///< Capacity minus all of the above.
    double perQueryBytes = 0.0; ///< Activation footprint of one query.
    int maxBatchSize = 0;       ///< floor(usable / perQuery), >= 0.
};

/** Memory-capacity model (see file comment). */
class MemoryModel {
  public:
    /** Framework + CUDA context reservation (bytes). */
    static constexpr double kReservedBytes = 1.5e9;

    /** Fitted activation constants for the model family of @p spec. */
    static ActivationConstants constantsFor(const ModelSpec& spec);

    /** Activation bytes for one query at the given length/sparsity. */
    static double perQueryBytes(const ModelSpec& spec, std::size_t seq_len,
                                bool sparse);

    /** Bytes of gradient storage for the spec's trainable parameters. */
    static double gradientBytes(const ModelSpec& spec);

    /** Full accounting, including the resulting maximum batch size. */
    static MemoryBreakdown analyze(const ModelSpec& spec,
                                   const GpuSpec& gpu, std::size_t seq_len,
                                   bool sparse);

    /** Convenience: just the maximum batch size (Table III). */
    static int maxBatchSize(const ModelSpec& spec, const GpuSpec& gpu,
                            std::size_t seq_len, bool sparse);
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_MEMORY_MODEL_HPP
