#include "gpusim/workload.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace ftsim {

// kActBytes / ceilDivD / paddedRows live in step_plan.hpp, shared with
// the compiled-plan evaluator so the two paths cannot drift apart.

WorkloadBuilder::WorkloadBuilder(const ModelSpec& spec,
                                 std::shared_ptr<PlanRegistry> registry)
    : spec_(spec), registry_(std::move(registry))
{
    if (spec_.nLayers == 0 || spec_.dModel == 0)
        fatal("WorkloadBuilder: incomplete model spec");
}

bool
WorkloadBuilder::checkpointing(const RunConfig& config) const
{
    if (config.gradientCheckpointing >= 0)
        return config.gradientCheckpointing > 0;
    return spec_.strategy == FineTuneStrategy::QLoRA;
}

KernelDesc
WorkloadBuilder::gemm(const char* name, Stage stage, LayerClass layer,
                      double m, double k, double n, double weight_bytes,
                      double count) const
{
    KernelDesc kd;
    kd.name = name;
    kd.kind = KernelKind::MatMul;
    kd.layer = layer;
    kd.stage = stage;
    // Whole-tile accounting: the padded FLOPs are what the tensor cores
    // actually execute; the skinny-GEMM penalty at small batch falls out
    // of this (time is flat until a 32-row tile fills).
    kd.flops = 2.0 * paddedRows(m) * k * n;
    kd.bytes = kActBytes * (m * k + m * n) + weight_bytes;
    kd.tiles = ceilDivD(m, 32.0) * ceilDivD(n, 128.0);
    kd.count = count;
    return kd;
}

KernelDesc
WorkloadBuilder::dequant(const char* name, Stage stage, LayerClass layer,
                         double elements, double count) const
{
    KernelDesc kd;
    kd.name = name;
    kd.kind = KernelKind::Dequant;
    kd.layer = layer;
    kd.stage = stage;
    // NF4-style unpack: nibble extraction, LUT, per-block scale multiply.
    kd.flops = kDequantOpsPerElement * elements;
    // Read packed codes (0.5 B/elem + scales), write fp16.
    kd.bytes = 0.5625 * elements + 2.0 * elements;
    kd.tiles = ceilDivD(elements, 4096.0);
    kd.count = count;
    return kd;
}

KernelDesc
WorkloadBuilder::rowwise(const char* name, KernelKind kind, Stage stage,
                         LayerClass layer, double rows, double width,
                         double ops_per_element, double count) const
{
    KernelDesc kd;
    kd.name = name;
    kd.kind = kind;
    kd.layer = layer;
    kd.stage = stage;
    kd.flops = ops_per_element * rows * width;
    kd.bytes = 2.0 * kActBytes * rows * width;  // Read + write.
    kd.tiles = rows;
    kd.count = count;
    return kd;
}

void
WorkloadBuilder::addLayerForward(std::vector<KernelDesc>& out,
                                 const RunConfig& config, Stage stage) const
{
    const double layers = static_cast<double>(spec_.nLayers);
    const double n_tok = static_cast<double>(config.batchSize) *
                         static_cast<double>(config.seqLen);
    const double d = static_cast<double>(spec_.dModel);
    const double dff = static_cast<double>(spec_.dFf);
    const double experts = static_cast<double>(spec_.nExperts);
    const double active = static_cast<double>(
        spec_.activeExperts(config.sparse));
    const double tok_per_expert = n_tok * active / experts;
    const bool quantized = spec_.strategy == FineTuneStrategy::QLoRA;
    const double wbytes = quantized ? 2.0 : spec_.bytesPerParam;

    if (spec_.backbone == BackboneKind::Attention) {
        const double t_seq = static_cast<double>(config.seqLen);
        const double d_kv = d * static_cast<double>(spec_.nKvHeads) /
                            static_cast<double>(spec_.nHeads);

        out.push_back(rowwise("input_norm", KernelKind::Norm, stage,
                              LayerClass::InputNorm, n_tok, d, 8.0,
                              layers));

        const double attn_w = 2.0 * d * d + 2.0 * d * d_kv;
        if (quantized)
            out.push_back(dequant("dequant(attn)", stage,
                                  LayerClass::Attention, attn_w, layers));
        out.push_back(gemm("matmul(qkv)", stage, LayerClass::Attention,
                           n_tok, d, d + 2.0 * d_kv,
                           wbytes * d * (d + 2.0 * d_kv), layers));
        // Fused flash-attention kernel: 2 GEMM-like passes over T.
        KernelDesc attn;
        attn.name = "attention(flash)";
        attn.kind = KernelKind::Attention;
        attn.layer = LayerClass::Attention;
        attn.stage = stage;
        attn.flops = 4.0 * n_tok * t_seq * d;
        attn.bytes = 4.0 * kActBytes * n_tok * d;
        attn.tiles = static_cast<double>(config.batchSize) *
                     static_cast<double>(spec_.nHeads) *
                     ceilDivD(t_seq, 64.0);
        attn.count = layers;
        out.push_back(attn);
        out.push_back(gemm("matmul(attn_out)", stage,
                           LayerClass::Attention, n_tok, d, d,
                           wbytes * d * d, layers));

        out.push_back(rowwise("post_attn_norm", KernelKind::Norm, stage,
                              LayerClass::PostAttnNorm, n_tok, d, 8.0,
                              layers));
    } else {
        const double di = static_cast<double>(spec_.dInner);
        const double ds = static_cast<double>(spec_.dState);

        out.push_back(rowwise("rms_norm", KernelKind::Norm, stage,
                              LayerClass::RmsNorm, n_tok, d, 8.0,
                              2.0 * layers));
        out.push_back(gemm("matmul(in_proj)", stage, LayerClass::Mamba,
                           n_tok, d, 2.0 * di, wbytes * d * 2.0 * di,
                           layers));
        KernelDesc conv;
        conv.name = "conv1d";
        conv.kind = KernelKind::Conv;
        conv.layer = LayerClass::Mamba;
        conv.stage = stage;
        conv.flops = 2.0 * n_tok * di * static_cast<double>(spec_.convK);
        conv.bytes = 2.0 * kActBytes * n_tok * di;
        conv.tiles = ceilDivD(n_tok * di, 4096.0);
        conv.count = layers;
        out.push_back(conv);
        out.push_back(rowwise("silu", KernelKind::Silu, stage,
                              LayerClass::Mamba, n_tok, di, 6.0, layers));
        out.push_back(gemm("matmul(bcdt)", stage, LayerClass::Mamba,
                           n_tok, di, 3.0 * ds, wbytes * di * 3.0 * ds,
                           layers));
        // Selective scan: parallel across batch x channels only — the
        // time dimension is sequential, so small batches expose few
        // blocks (the Mamba-specific occupancy cliff).
        KernelDesc scan;
        scan.name = "selective_scan";
        scan.kind = KernelKind::Scan;
        scan.layer = LayerClass::Mamba;
        scan.stage = stage;
        scan.flops = 6.0 * n_tok * di;
        scan.bytes = 3.0 * kActBytes * n_tok * di;
        scan.tiles = static_cast<double>(config.batchSize) *
                     ceilDivD(di, 32.0);
        scan.count = layers;
        out.push_back(scan);
        out.push_back(rowwise("elementwise_gate", KernelKind::Elementwise,
                              stage, LayerClass::Mamba, n_tok, di, 2.0,
                              layers));
        out.push_back(gemm("matmul(out_proj)", stage, LayerClass::Mamba,
                           n_tok, di, d, wbytes * di * d, layers));
    }

    // --- MoE layer: router then experts (Figs. 6 / 12). ---
    if (quantized)
        out.push_back(dequant("router_dequant", stage, LayerClass::MoE,
                              d * experts, layers));
    out.push_back(gemm("matmul(router)", stage, LayerClass::MoE, n_tok, d,
                       experts, wbytes * d * experts, layers));
    if (spec_.backbone == BackboneKind::Attention) {
        out.push_back(rowwise("softmax", KernelKind::Softmax, stage,
                              LayerClass::MoE, n_tok, experts, 8.0,
                              layers));
        out.push_back(rowwise("topk", KernelKind::TopK, stage,
                              LayerClass::MoE, n_tok, experts, 4.0,
                              layers));
    } else {
        out.push_back(rowwise("sigmoid", KernelKind::Sigmoid, stage,
                              LayerClass::MoE, n_tok, experts, 4.0,
                              layers));
        out.push_back(rowwise("top_k", KernelKind::TopK, stage,
                              LayerClass::MoE, n_tok, experts, 4.0,
                              layers));
    }

    const double expert_count = layers * experts;
    if (quantized)
        out.push_back(dequant("w1_dequant", stage, LayerClass::MoE,
                              d * dff, expert_count));
    out.push_back(gemm("matmul(w1)", stage, LayerClass::MoE,
                       tok_per_expert, d, dff, wbytes * d * dff,
                       expert_count));
    if (spec_.expertKind == ExpertKind::SwiGLU) {
        if (quantized)
            out.push_back(dequant("w3_dequant", stage, LayerClass::MoE,
                                  d * dff, expert_count));
        out.push_back(gemm("matmul(w3)", stage, LayerClass::MoE,
                           tok_per_expert, d, dff, wbytes * d * dff,
                           expert_count));
        out.push_back(rowwise("silu", KernelKind::Silu, stage,
                              LayerClass::MoE, tok_per_expert, dff, 6.0,
                              expert_count));
    } else {
        out.push_back(rowwise("gelu", KernelKind::Gelu, stage,
                              LayerClass::MoE, tok_per_expert, dff, 8.0,
                              expert_count));
    }
    out.push_back(rowwise("elementwise_mult", KernelKind::Elementwise,
                          stage, LayerClass::MoE, tok_per_expert,
                          spec_.expertKind == ExpertKind::SwiGLU ? dff : d,
                          2.0, expert_count));
    if (quantized)
        out.push_back(dequant("w2_dequant", stage, LayerClass::MoE,
                              dff * d, expert_count));
    out.push_back(gemm("matmul(w2)", stage, LayerClass::MoE,
                       tok_per_expert, dff, d, wbytes * dff * d,
                       expert_count));

    if (quantized) {
        // LoRA adapter GEMMs (trainable path): one A/B pair per adapted
        // projection, three projections per SwiGLU expert.
        const double r = static_cast<double>(spec_.loraRank);
        KernelDesc lora;
        lora.name = "matmul(lora)";
        lora.kind = KernelKind::MatMul;
        lora.layer = LayerClass::MoE;
        lora.stage = stage;
        lora.flops = paddedRows(tok_per_expert) * r * (d + dff);
        lora.bytes = kActBytes * tok_per_expert * (d + dff) / 2.0 +
                     kActBytes * r * (d + dff);
        lora.tiles = ceilDivD(tok_per_expert, 32.0);
        lora.count = expert_count * 6.0;
        out.push_back(lora);
    }
}

void
WorkloadBuilder::addLayerBackward(std::vector<KernelDesc>& out,
                                  const RunConfig& config) const
{
    const Stage stage = Stage::Backward;
    const double layers = static_cast<double>(spec_.nLayers);
    const double n_tok = static_cast<double>(config.batchSize) *
                         static_cast<double>(config.seqLen);
    const double d = static_cast<double>(spec_.dModel);
    const double dff = static_cast<double>(spec_.dFf);
    const double experts = static_cast<double>(spec_.nExperts);
    const double active = static_cast<double>(
        spec_.activeExperts(config.sparse));
    const double tok_per_expert = n_tok * active / experts;
    const bool quantized = spec_.strategy == FineTuneStrategy::QLoRA;
    const bool full_ft = spec_.strategy == FineTuneStrategy::FullFineTune;
    const double wbytes = quantized ? 2.0 : spec_.bytesPerParam;
    // Full fine-tuning computes dX and dW for every GEMM (2x flops and
    // a gradient write); QLoRA only propagates dX through frozen bases.
    const double gemm_mult = full_ft ? 2.0 : 1.0;

    if (spec_.backbone == BackboneKind::Attention) {
        const double t_seq = static_cast<double>(config.seqLen);
        const double d_kv = d * static_cast<double>(spec_.nKvHeads) /
                            static_cast<double>(spec_.nHeads);
        if (quantized)
            out.push_back(dequant("dequant(attn)", stage,
                                  LayerClass::Attention,
                                  2.0 * d * d + 2.0 * d * d_kv, layers));
        out.push_back(gemm("matmul(qkv_bwd)", stage, LayerClass::Attention,
                           n_tok, d + 2.0 * d_kv, d,
                           wbytes * d * (d + 2.0 * d_kv), layers));
        KernelDesc attn;
        attn.name = "attention(flash_bwd)";
        attn.kind = KernelKind::Attention;
        attn.layer = LayerClass::Attention;
        attn.stage = stage;
        attn.flops = 10.0 * n_tok * t_seq * d;  // ~2.5x forward.
        attn.bytes = 8.0 * kActBytes * n_tok * d;
        attn.tiles = static_cast<double>(config.batchSize) *
                     static_cast<double>(spec_.nHeads) *
                     ceilDivD(t_seq, 64.0);
        attn.count = layers;
        out.push_back(attn);
        out.push_back(gemm("matmul(attn_out_bwd)", stage,
                           LayerClass::Attention, n_tok, d, d,
                           wbytes * d * d, layers));
        out.push_back(rowwise("norm_bwd", KernelKind::Norm, stage,
                              LayerClass::InputNorm, n_tok, d, 12.0,
                              2.0 * layers));
    } else {
        const double di = static_cast<double>(spec_.dInner);
        out.push_back(rowwise("rms_norm_bwd", KernelKind::Norm, stage,
                              LayerClass::RmsNorm, n_tok, d, 12.0,
                              2.0 * layers));
        KernelDesc in_proj = gemm("matmul(in_proj_bwd)", stage,
                                  LayerClass::Mamba, n_tok, d, 2.0 * di,
                                  wbytes * d * 2.0 * di, layers);
        in_proj.flops *= gemm_mult;
        out.push_back(in_proj);
        KernelDesc scan;
        scan.name = "selective_scan_bwd";
        scan.kind = KernelKind::Scan;
        scan.layer = LayerClass::Mamba;
        scan.stage = stage;
        scan.flops = 9.0 * n_tok * di;  // Reverse-time scan, ~1.5x fwd.
        scan.bytes = 4.5 * kActBytes * n_tok * di;
        scan.tiles = static_cast<double>(config.batchSize) *
                     ceilDivD(di, 32.0);
        scan.count = layers;
        out.push_back(scan);
        KernelDesc conv;
        conv.name = "conv1d_bwd";
        conv.kind = KernelKind::Conv;
        conv.layer = LayerClass::Mamba;
        conv.stage = stage;
        conv.flops =
            4.0 * n_tok * di * static_cast<double>(spec_.convK);
        conv.bytes = 4.0 * kActBytes * n_tok * di;
        conv.tiles = ceilDivD(n_tok * di, 4096.0);
        conv.count = layers;
        out.push_back(conv);
        out.push_back(rowwise("silu_bwd", KernelKind::Silu, stage,
                              LayerClass::Mamba, n_tok, di, 8.0, layers));
        KernelDesc out_proj = gemm("matmul(out_proj_bwd)", stage,
                                   LayerClass::Mamba, n_tok, di, d,
                                   wbytes * di * d, layers);
        out_proj.flops *= gemm_mult;
        out.push_back(out_proj);
    }

    // MoE backward.
    if (quantized)
        out.push_back(dequant("router_dequant", stage, LayerClass::MoE,
                              d * experts, layers));
    KernelDesc router = gemm("matmul(router_bwd)", stage, LayerClass::MoE,
                             n_tok, experts, d, wbytes * d * experts,
                             layers);
    router.flops *= gemm_mult;
    out.push_back(router);
    out.push_back(rowwise("softmax_bwd", KernelKind::Softmax, stage,
                          LayerClass::MoE, n_tok, experts, 10.0, layers));

    const double expert_count = layers * experts;
    struct Proj {
        const char* dequant_name;
        const char* matmul_name;
        double in;
        double out;
    };
    std::vector<Proj> projections = {
        {"w1_dequant", "matmul(w1_bwd)", d, dff},
        {"w2_dequant", "matmul(w2_bwd)", dff, d},
    };
    if (spec_.expertKind == ExpertKind::SwiGLU)
        projections.push_back({"w3_dequant", "matmul(w3_bwd)", d, dff});
    for (const Proj& p : projections) {
        if (quantized)
            out.push_back(dequant(p.dequant_name, stage, LayerClass::MoE,
                                  p.in * p.out, expert_count));
        KernelDesc kd = gemm(p.matmul_name, stage, LayerClass::MoE,
                             tok_per_expert, p.out, p.in,
                             wbytes * p.in * p.out, expert_count);
        kd.flops *= gemm_mult;
        if (full_ft)
            kd.bytes += 2.0 * p.in * p.out;  // Gradient write.
        out.push_back(kd);
    }
    out.push_back(rowwise("activation_bwd",
                          spec_.expertKind == ExpertKind::SwiGLU
                              ? KernelKind::Silu
                              : KernelKind::Gelu,
                          stage, LayerClass::MoE, tok_per_expert, dff, 8.0,
                          expert_count));
    out.push_back(rowwise("elementwise_mult_bwd", KernelKind::Elementwise,
                          stage, LayerClass::MoE, tok_per_expert,
                          spec_.expertKind == ExpertKind::SwiGLU ? dff : d,
                          4.0, expert_count));

    if (quantized) {
        // LoRA gradient GEMMs: dX + dA + dB per adapted projection.
        const double r = static_cast<double>(spec_.loraRank);
        KernelDesc lora;
        lora.name = "matmul(lora_bwd)";
        lora.kind = KernelKind::MatMul;
        lora.layer = LayerClass::MoE;
        lora.stage = stage;
        lora.flops = paddedRows(tok_per_expert) * r * (d + dff);
        lora.bytes = kActBytes * tok_per_expert * (d + dff) / 2.0 +
                     2.0 * kActBytes * r * (d + dff);
        lora.tiles = ceilDivD(tok_per_expert, 32.0);
        lora.count = expert_count * 12.0;
        out.push_back(lora);
    }
}

void
WorkloadBuilder::addHead(std::vector<KernelDesc>& out,
                         const RunConfig& config, Stage stage) const
{
    const double n_tok = static_cast<double>(config.batchSize) *
                         static_cast<double>(config.seqLen);
    const double d = static_cast<double>(spec_.dModel);
    const double v = static_cast<double>(spec_.vocab);
    const bool quantized = spec_.strategy == FineTuneStrategy::QLoRA;
    const double wbytes = quantized ? 2.0 : spec_.bytesPerParam;

    if (stage == Stage::Forward) {
        out.push_back(rowwise("embedding", KernelKind::Elementwise, stage,
                              LayerClass::Head, n_tok, d, 1.0, 1.0));
        out.push_back(rowwise("final_norm", KernelKind::Norm, stage,
                              LayerClass::Head, n_tok, d, 8.0, 1.0));
        if (quantized)
            out.push_back(dequant("dequant(head)", stage, LayerClass::Head,
                                  d * v, 1.0));
        out.push_back(gemm("matmul(lm_head)", stage, LayerClass::Head,
                           n_tok, d, v, wbytes * d * v, 1.0));
        out.push_back(rowwise("loss_softmax", KernelKind::Softmax, stage,
                              LayerClass::Head, n_tok, v, 8.0, 1.0));
    } else {
        if (quantized)
            out.push_back(dequant("dequant(head)", stage, LayerClass::Head,
                                  d * v, 1.0));
        KernelDesc kd = gemm("matmul(lm_head_bwd)", stage,
                             LayerClass::Head, n_tok, v, d, wbytes * d * v,
                             1.0);
        if (spec_.strategy == FineTuneStrategy::FullFineTune) {
            kd.flops *= 2.0;           // dX + dW.
            kd.bytes += 2.0 * d * v;   // Gradient write.
        }
        out.push_back(kd);
        if (spec_.strategy == FineTuneStrategy::FullFineTune) {
            out.push_back(rowwise("embedding_bwd", KernelKind::Elementwise,
                                  stage, LayerClass::Head, n_tok, d, 2.0,
                                  1.0));
        }
    }
}

void
WorkloadBuilder::addOptimizer(std::vector<KernelDesc>& out) const
{
    // Unfused AdamW: several elementwise passes over the optimizer state
    // (read two fp32 arrays, write one, per pass). The stage's runtime is
    // therefore proportional to the trainable-parameter count — the
    // paper's Fig. 4 contrast between BlackMamba (full FT, up to 53%)
    // and Mixtral (LoRA-only, negligible).
    constexpr double kPasses = 4.0;
    const double p = static_cast<double>(spec_.trainableParams());
    KernelDesc kd;
    kd.name = "adamw";
    kd.kind = KernelKind::Optimizer;
    kd.layer = LayerClass::OptimizerState;
    kd.stage = Stage::Optimizer;
    kd.flops = kPasses * 4.0 * p;
    kd.bytes = kPasses * 11.0 * p;
    kd.tiles = ceilDivD(p, 4096.0);
    kd.count = kPasses;
    // Split the lump across `count` launches for overhead accounting.
    kd.flops /= kPasses;
    kd.bytes /= kPasses;
    out.push_back(kd);
}

std::vector<KernelDesc>
WorkloadBuilder::buildForward(const RunConfig& config) const
{
    if (config.batchSize == 0 || config.seqLen == 0)
        fatal("WorkloadBuilder: zero batch or sequence length");
    std::vector<KernelDesc> out;
    addLayerForward(out, config, Stage::Forward);
    addHead(out, config, Stage::Forward);
    return out;
}

std::vector<KernelDesc>
WorkloadBuilder::buildStep(const RunConfig& config) const
{
    std::vector<KernelDesc> out = buildForward(config);
    if (checkpointing(config)) {
        // Gradient checkpointing re-runs each layer's forward inside the
        // backward pass (the paper's Mixtral setup, §IV-B2).
        std::vector<KernelDesc> recompute;
        addLayerForward(recompute, config, Stage::Backward);
        for (auto& kd : recompute) {
            kd.name += " (recompute)";
            out.push_back(std::move(kd));
        }
    }
    addLayerBackward(out, config);
    addHead(out, config, Stage::Backward);
    addOptimizer(out);
    return out;
}

// ---- Compiled-plan path ---------------------------------------------
//
// Each compile* function mirrors its add* counterpart above kernel for
// kernel: same emission order, same names, same counts, and formulas
// whose apply() replicates the reference arithmetic term-for-term. The
// golden tests in tests/gpusim/test_step_plan.cpp enforce the mirror.

namespace {

/** The reference name, plus the recompute suffix buildStep appends. */
std::string
planKernelName(const char* name, bool recompute)
{
    std::string out = name;
    if (recompute)
        out += " (recompute)";
    return out;
}

/** Batch-independent dequant terms; mirrors WorkloadBuilder::dequant. */
KernelFormula
dequantFormula(double elements)
{
    return KernelFormula::fixed(
        WorkloadBuilder::kDequantOpsPerElement * elements,
        0.5625 * elements + 2.0 * elements,
        ceilDivD(elements, 4096.0));
}

}  // namespace

const StepPlan&
WorkloadBuilder::stepPlan(const RunConfig& config) const
{
    const bool ckpt = checkpointing(config);
    const std::size_t slot =
        (config.sparse ? 1u : 0u) | (ckpt ? 2u : 0u);
    PlanSlot& entry = plans_[slot];
    std::call_once(entry.once, [&] {
        if (registry_) {
            // Fleet-wide lookup: whichever builder on this model gets
            // here first compiles; everyone else shares its plan (name
            // ids resolve because all of them intern into the
            // registry's interner).
            entry.plan = registry_->plan(
                strCat(spec_.fingerprint(), "|sparse=", config.sparse,
                       "|ckpt=", ckpt),
                [&] {
                    plans_compiled_.fetch_add(1);
                    return compilePlan(config.sparse, ckpt);
                });
        } else {
            entry.plan = std::make_shared<const StepPlan>(
                compilePlan(config.sparse, ckpt));
            plans_compiled_.fetch_add(1);
        }
    });
    return *entry.plan;
}

StepPlan
WorkloadBuilder::compilePlan(bool sparse, bool checkpointing) const
{
    StepPlan plan;
    plan.activeExperts =
        static_cast<double>(spec_.activeExperts(sparse));
    plan.nExperts = static_cast<double>(spec_.nExperts);
    compileLayerForward(plan, Stage::Forward, false);
    compileHead(plan, Stage::Forward);
    if (checkpointing)
        compileLayerForward(plan, Stage::Backward, true);
    compileLayerBackward(plan);
    compileHead(plan, Stage::Backward);
    compileOptimizer(plan);
    plan.finalize(interner());
    return plan;
}

void
WorkloadBuilder::compileLayerForward(StepPlan& plan, Stage stage,
                                     bool recompute) const
{
    const double layers = static_cast<double>(spec_.nLayers);
    const double d = static_cast<double>(spec_.dModel);
    const double dff = static_cast<double>(spec_.dFf);
    const double experts = static_cast<double>(spec_.nExperts);
    const bool quantized = spec_.strategy == FineTuneStrategy::QLoRA;
    const double wbytes = quantized ? 2.0 : spec_.bytesPerParam;

    auto emit = [&](const char* name, KernelKind kind, LayerClass layer,
                    double count, const KernelFormula& f) {
        plan.push(interner().intern(planKernelName(name, recompute)), kind,
                  layer, stage, count, f);
    };

    if (spec_.backbone == BackboneKind::Attention) {
        const double d_kv = d * static_cast<double>(spec_.nKvHeads) /
                            static_cast<double>(spec_.nHeads);

        emit("input_norm", KernelKind::Norm, LayerClass::InputNorm,
             layers, KernelFormula::rowwise(RowsKind::Tokens, d, 8.0));

        const double attn_w = 2.0 * d * d + 2.0 * d * d_kv;
        if (quantized)
            emit("dequant(attn)", KernelKind::Dequant,
                 LayerClass::Attention, layers, dequantFormula(attn_w));
        emit("matmul(qkv)", KernelKind::MatMul, LayerClass::Attention,
             layers,
             KernelFormula::gemm(RowsKind::Tokens, d, d + 2.0 * d_kv,
                                 wbytes * d * (d + 2.0 * d_kv), 1.0,
                                 0.0));
        emit("attention(flash)", KernelKind::Attention,
             LayerClass::Attention, layers,
             KernelFormula::attention(
                 4.0, 4.0, d, static_cast<double>(spec_.nHeads)));
        emit("matmul(attn_out)", KernelKind::MatMul,
             LayerClass::Attention, layers,
             KernelFormula::gemm(RowsKind::Tokens, d, d, wbytes * d * d,
                                 1.0, 0.0));

        emit("post_attn_norm", KernelKind::Norm, LayerClass::PostAttnNorm,
             layers, KernelFormula::rowwise(RowsKind::Tokens, d, 8.0));
    } else {
        const double di = static_cast<double>(spec_.dInner);
        const double ds = static_cast<double>(spec_.dState);

        emit("rms_norm", KernelKind::Norm, LayerClass::RmsNorm,
             2.0 * layers,
             KernelFormula::rowwise(RowsKind::Tokens, d, 8.0));
        emit("matmul(in_proj)", KernelKind::MatMul, LayerClass::Mamba,
             layers,
             KernelFormula::gemm(RowsKind::Tokens, d, 2.0 * di,
                                 wbytes * d * 2.0 * di, 1.0, 0.0));
        emit("conv1d", KernelKind::Conv, LayerClass::Mamba, layers,
             KernelFormula::conv(2.0, 2.0, di,
                                 static_cast<double>(spec_.convK)));
        emit("silu", KernelKind::Silu, LayerClass::Mamba, layers,
             KernelFormula::rowwise(RowsKind::Tokens, di, 6.0));
        emit("matmul(bcdt)", KernelKind::MatMul, LayerClass::Mamba,
             layers,
             KernelFormula::gemm(RowsKind::Tokens, di, 3.0 * ds,
                                 wbytes * di * 3.0 * ds, 1.0, 0.0));
        emit("selective_scan", KernelKind::Scan, LayerClass::Mamba,
             layers,
             KernelFormula::scan(6.0, 3.0, di, ceilDivD(di, 32.0)));
        emit("elementwise_gate", KernelKind::Elementwise,
             LayerClass::Mamba, layers,
             KernelFormula::rowwise(RowsKind::Tokens, di, 2.0));
        emit("matmul(out_proj)", KernelKind::MatMul, LayerClass::Mamba,
             layers,
             KernelFormula::gemm(RowsKind::Tokens, di, d,
                                 wbytes * di * d, 1.0, 0.0));
    }

    // --- MoE layer: router then experts (Figs. 6 / 12). ---
    if (quantized)
        emit("router_dequant", KernelKind::Dequant, LayerClass::MoE,
             layers, dequantFormula(d * experts));
    emit("matmul(router)", KernelKind::MatMul, LayerClass::MoE, layers,
         KernelFormula::gemm(RowsKind::Tokens, d, experts,
                             wbytes * d * experts, 1.0, 0.0));
    if (spec_.backbone == BackboneKind::Attention) {
        emit("softmax", KernelKind::Softmax, LayerClass::MoE, layers,
             KernelFormula::rowwise(RowsKind::Tokens, experts, 8.0));
        emit("topk", KernelKind::TopK, LayerClass::MoE, layers,
             KernelFormula::rowwise(RowsKind::Tokens, experts, 4.0));
    } else {
        emit("sigmoid", KernelKind::Sigmoid, LayerClass::MoE, layers,
             KernelFormula::rowwise(RowsKind::Tokens, experts, 4.0));
        emit("top_k", KernelKind::TopK, LayerClass::MoE, layers,
             KernelFormula::rowwise(RowsKind::Tokens, experts, 4.0));
    }

    const double expert_count = layers * experts;
    if (quantized)
        emit("w1_dequant", KernelKind::Dequant, LayerClass::MoE,
             expert_count, dequantFormula(d * dff));
    emit("matmul(w1)", KernelKind::MatMul, LayerClass::MoE, expert_count,
         KernelFormula::gemm(RowsKind::TokensPerExpert, d, dff,
                             wbytes * d * dff, 1.0, 0.0));
    if (spec_.expertKind == ExpertKind::SwiGLU) {
        if (quantized)
            emit("w3_dequant", KernelKind::Dequant, LayerClass::MoE,
                 expert_count, dequantFormula(d * dff));
        emit("matmul(w3)", KernelKind::MatMul, LayerClass::MoE,
             expert_count,
             KernelFormula::gemm(RowsKind::TokensPerExpert, d, dff,
                                 wbytes * d * dff, 1.0, 0.0));
        emit("silu", KernelKind::Silu, LayerClass::MoE, expert_count,
             KernelFormula::rowwise(RowsKind::TokensPerExpert, dff,
                                    6.0));
    } else {
        emit("gelu", KernelKind::Gelu, LayerClass::MoE, expert_count,
             KernelFormula::rowwise(RowsKind::TokensPerExpert, dff,
                                    8.0));
    }
    emit("elementwise_mult", KernelKind::Elementwise, LayerClass::MoE,
         expert_count,
         KernelFormula::rowwise(
             RowsKind::TokensPerExpert,
             spec_.expertKind == ExpertKind::SwiGLU ? dff : d, 2.0));
    if (quantized)
        emit("w2_dequant", KernelKind::Dequant, LayerClass::MoE,
             expert_count, dequantFormula(dff * d));
    emit("matmul(w2)", KernelKind::MatMul, LayerClass::MoE, expert_count,
         KernelFormula::gemm(RowsKind::TokensPerExpert, dff, d,
                             wbytes * dff * d, 1.0, 0.0));

    if (quantized) {
        // LoRA adapter GEMMs (trainable path).
        const double r = static_cast<double>(spec_.loraRank);
        emit("matmul(lora)", KernelKind::MatMul, LayerClass::MoE,
             expert_count * 6.0,
             KernelFormula::lora(RowsKind::TokensPerExpert, r, d + dff,
                                 kActBytes * r * (d + dff)));
    }
}

void
WorkloadBuilder::compileLayerBackward(StepPlan& plan) const
{
    const Stage stage = Stage::Backward;
    const double layers = static_cast<double>(spec_.nLayers);
    const double d = static_cast<double>(spec_.dModel);
    const double dff = static_cast<double>(spec_.dFf);
    const double experts = static_cast<double>(spec_.nExperts);
    const bool quantized = spec_.strategy == FineTuneStrategy::QLoRA;
    const bool full_ft = spec_.strategy == FineTuneStrategy::FullFineTune;
    const double wbytes = quantized ? 2.0 : spec_.bytesPerParam;
    const double gemm_mult = full_ft ? 2.0 : 1.0;

    auto emit = [&](const char* name, KernelKind kind, LayerClass layer,
                    double count, const KernelFormula& f) {
        plan.push(interner().intern(name), kind, layer, stage, count, f);
    };

    if (spec_.backbone == BackboneKind::Attention) {
        const double d_kv = d * static_cast<double>(spec_.nKvHeads) /
                            static_cast<double>(spec_.nHeads);
        if (quantized)
            emit("dequant(attn)", KernelKind::Dequant,
                 LayerClass::Attention, layers,
                 dequantFormula(2.0 * d * d + 2.0 * d * d_kv));
        emit("matmul(qkv_bwd)", KernelKind::MatMul, LayerClass::Attention,
             layers,
             KernelFormula::gemm(RowsKind::Tokens, d + 2.0 * d_kv, d,
                                 wbytes * d * (d + 2.0 * d_kv), 1.0,
                                 0.0));
        emit("attention(flash_bwd)", KernelKind::Attention,
             LayerClass::Attention, layers,
             KernelFormula::attention(
                 10.0, 8.0, d, static_cast<double>(spec_.nHeads)));
        emit("matmul(attn_out_bwd)", KernelKind::MatMul,
             LayerClass::Attention, layers,
             KernelFormula::gemm(RowsKind::Tokens, d, d, wbytes * d * d,
                                 1.0, 0.0));
        emit("norm_bwd", KernelKind::Norm, LayerClass::InputNorm,
             2.0 * layers,
             KernelFormula::rowwise(RowsKind::Tokens, d, 12.0));
    } else {
        const double di = static_cast<double>(spec_.dInner);
        emit("rms_norm_bwd", KernelKind::Norm, LayerClass::RmsNorm,
             2.0 * layers,
             KernelFormula::rowwise(RowsKind::Tokens, d, 12.0));
        emit("matmul(in_proj_bwd)", KernelKind::MatMul,
             LayerClass::Mamba, layers,
             KernelFormula::gemm(RowsKind::Tokens, d, 2.0 * di,
                                 wbytes * d * 2.0 * di, gemm_mult, 0.0));
        emit("selective_scan_bwd", KernelKind::Scan, LayerClass::Mamba,
             layers,
             KernelFormula::scan(9.0, 4.5, di, ceilDivD(di, 32.0)));
        emit("conv1d_bwd", KernelKind::Conv, LayerClass::Mamba, layers,
             KernelFormula::conv(4.0, 4.0, di,
                                 static_cast<double>(spec_.convK)));
        emit("silu_bwd", KernelKind::Silu, LayerClass::Mamba, layers,
             KernelFormula::rowwise(RowsKind::Tokens, di, 8.0));
        emit("matmul(out_proj_bwd)", KernelKind::MatMul,
             LayerClass::Mamba, layers,
             KernelFormula::gemm(RowsKind::Tokens, di, d,
                                 wbytes * di * d, gemm_mult, 0.0));
    }

    // MoE backward.
    if (quantized)
        emit("router_dequant", KernelKind::Dequant, LayerClass::MoE,
             layers, dequantFormula(d * experts));
    emit("matmul(router_bwd)", KernelKind::MatMul, LayerClass::MoE,
         layers,
         KernelFormula::gemm(RowsKind::Tokens, experts, d,
                             wbytes * d * experts, gemm_mult, 0.0));
    emit("softmax_bwd", KernelKind::Softmax, LayerClass::MoE, layers,
         KernelFormula::rowwise(RowsKind::Tokens, experts, 10.0));

    const double expert_count = layers * experts;
    struct Proj {
        const char* dequant_name;
        const char* matmul_name;
        double in;
        double out;
    };
    std::vector<Proj> projections = {
        {"w1_dequant", "matmul(w1_bwd)", d, dff},
        {"w2_dequant", "matmul(w2_bwd)", dff, d},
    };
    if (spec_.expertKind == ExpertKind::SwiGLU)
        projections.push_back({"w3_dequant", "matmul(w3_bwd)", d, dff});
    for (const Proj& p : projections) {
        if (quantized)
            emit(p.dequant_name, KernelKind::Dequant, LayerClass::MoE,
                 expert_count, dequantFormula(p.in * p.out));
        emit(p.matmul_name, KernelKind::MatMul, LayerClass::MoE,
             expert_count,
             KernelFormula::gemm(
                 RowsKind::TokensPerExpert, p.out, p.in,
                 wbytes * p.in * p.out, gemm_mult,
                 full_ft ? 2.0 * p.in * p.out : 0.0));  // Grad write.
    }
    emit("activation_bwd",
         spec_.expertKind == ExpertKind::SwiGLU ? KernelKind::Silu
                                                : KernelKind::Gelu,
         LayerClass::MoE, expert_count,
         KernelFormula::rowwise(RowsKind::TokensPerExpert, dff, 8.0));
    emit("elementwise_mult_bwd", KernelKind::Elementwise, LayerClass::MoE,
         expert_count,
         KernelFormula::rowwise(
             RowsKind::TokensPerExpert,
             spec_.expertKind == ExpertKind::SwiGLU ? dff : d, 4.0));

    if (quantized) {
        // LoRA gradient GEMMs: dX + dA + dB per adapted projection.
        const double r = static_cast<double>(spec_.loraRank);
        emit("matmul(lora_bwd)", KernelKind::MatMul, LayerClass::MoE,
             expert_count * 12.0,
             KernelFormula::lora(RowsKind::TokensPerExpert, r, d + dff,
                                 2.0 * kActBytes * r * (d + dff)));
    }
}

void
WorkloadBuilder::compileHead(StepPlan& plan, Stage stage) const
{
    const double d = static_cast<double>(spec_.dModel);
    const double v = static_cast<double>(spec_.vocab);
    const bool quantized = spec_.strategy == FineTuneStrategy::QLoRA;
    const double wbytes = quantized ? 2.0 : spec_.bytesPerParam;

    auto emit = [&](const char* name, KernelKind kind, double count,
                    const KernelFormula& f) {
        plan.push(interner().intern(name), kind, LayerClass::Head, stage,
                  count, f);
    };

    if (stage == Stage::Forward) {
        emit("embedding", KernelKind::Elementwise, 1.0,
             KernelFormula::rowwise(RowsKind::Tokens, d, 1.0));
        emit("final_norm", KernelKind::Norm, 1.0,
             KernelFormula::rowwise(RowsKind::Tokens, d, 8.0));
        if (quantized)
            emit("dequant(head)", KernelKind::Dequant, 1.0,
                 dequantFormula(d * v));
        emit("matmul(lm_head)", KernelKind::MatMul, 1.0,
             KernelFormula::gemm(RowsKind::Tokens, d, v, wbytes * d * v,
                                 1.0, 0.0));
        emit("loss_softmax", KernelKind::Softmax, 1.0,
             KernelFormula::rowwise(RowsKind::Tokens, v, 8.0));
    } else {
        if (quantized)
            emit("dequant(head)", KernelKind::Dequant, 1.0,
                 dequantFormula(d * v));
        const bool full_ft =
            spec_.strategy == FineTuneStrategy::FullFineTune;
        emit("matmul(lm_head_bwd)", KernelKind::MatMul, 1.0,
             KernelFormula::gemm(RowsKind::Tokens, v, d, wbytes * d * v,
                                 full_ft ? 2.0 : 1.0,          // dX + dW.
                                 full_ft ? 2.0 * d * v : 0.0));
        if (full_ft)
            emit("embedding_bwd", KernelKind::Elementwise, 1.0,
                 KernelFormula::rowwise(RowsKind::Tokens, d, 2.0));
    }
}

void
WorkloadBuilder::compileOptimizer(StepPlan& plan) const
{
    // Mirrors addOptimizer: the kernel is fully batch-independent.
    constexpr double kPasses = 4.0;
    const double p = static_cast<double>(spec_.trainableParams());
    double flops = kPasses * 4.0 * p;
    double bytes = kPasses * 11.0 * p;
    const double tiles = ceilDivD(p, 4096.0);
    flops /= kPasses;
    bytes /= kPasses;
    plan.push(interner().intern("adamw"), KernelKind::Optimizer,
              LayerClass::OptimizerState, Stage::Optimizer, kPasses,
              KernelFormula::fixed(flops, bytes, tiles));
}

}  // namespace ftsim
