#ifndef FTSIM_GPUSIM_EXEC_MODEL_HPP
#define FTSIM_GPUSIM_EXEC_MODEL_HPP

/**
 * @file
 * Roofline-with-occupancy kernel execution model.
 *
 * Each kernel is timed as max(compute time, memory time) + launch cost,
 * where the compute rate is the kind-appropriate peak (tensor core for
 * GEMM/attention, vector ALU for everything else) scaled by an occupancy
 * factor derived from how many thread blocks the kernel exposes relative
 * to the SM count. This is deliberately simple — and it is sufficient to
 * produce every hardware-level observation the paper makes:
 *
 *  - SM utilization rises with batch size (more tiles -> occupancy);
 *  - time-weighted DRAM utilization falls with batch size (weights are
 *    loaded once per step, so the traffic amortizes: Takeaway 5's
 *    memory-bound -> compute-bound transition);
 *  - de-quantization kernels stay SM-busy independent of batch size
 *    (their parallelism comes from the weight matrix, not the batch);
 *  - matmul dominates the MoE layer and saturates sub-linearly.
 *
 * A SimCalibration bundles the software-stack constants (framework
 * dispatch overhead per kernel, achievable-fraction-of-peak derates).
 * These are the analogue of the paper's fitted coefficients: they absorb
 * everything the structural model does not capture.
 */

#include <cstddef>

#include "gpusim/gpu_spec.hpp"
#include "gpusim/kernel.hpp"

namespace ftsim {

/** Software-stack calibration constants (see file comment). */
struct SimCalibration {
    /** Host-side framework dispatch per kernel launch, microseconds
     *  (eager PyTorch + LLaMA-Factory glue). */
    double hostOverheadUs = 30.0;
    /**
     * Fraction of tensor peak a well-shaped GEMM achieves. Calibrated to
     * the paper's measured throughputs: eager PyTorch + bitsandbytes on
     * skinny fine-tuning GEMMs lands near ~12% of the dense tensor peak
     * (back-solved from Fig. 8's marginal per-query step costs).
     */
    double matmulEfficiency = 0.20;
    /** Fraction of vector peak elementwise kernels achieve. */
    double vectorEfficiency = 0.75;
    /**
     * Fraction of vector peak the 4-bit de-quantization kernels achieve.
     * NF4 unpacking is integer/LUT work, far from FMA peak; the low rate
     * is what keeps these kernels SM-bound at every batch size (Fig. 9).
     */
    double dequantEfficiency = 0.22;
    /** Fraction of DRAM peak streaming kernels achieve. */
    double memoryEfficiency = 0.80;
    /** Thread blocks per SM for full occupancy. */
    double blocksPerSm = 2.0;
    /** Occupancy floor (one lonely block still runs). */
    double minOccupancy = 0.02;
    /** Per-step host time (dataloader, logging), milliseconds. */
    double stepOverheadMs = 50.0;
    /** Optimizer passes over state per step (unfused AdamW). */
    double optimizerPasses = 4.0;
};

/** Times kernels against a GPU spec. */
class ExecutionModel {
  public:
    ExecutionModel(const GpuSpec& gpu, const SimCalibration& calib = {});

    /** Simulates one kernel descriptor (all its `count` launches). */
    KernelMetrics simulate(const KernelDesc& kernel) const;

    /**
     * Simulates from raw fields — the compiled-plan hot path, which
     * stores kernels as SoA arrays and never materializes a KernelDesc.
     * Identical arithmetic to the descriptor overload (which delegates
     * here), so the two paths agree to the last bit.
     */
    KernelMetrics simulate(KernelKind kind, double flops, double bytes,
                           double tiles, double efficiency,
                           double count) const;

    /**
     * Accumulates every kernel's seconds into all points of a sweep at
     * once: `totals[j] += simulate(kernel i at point j).seconds` for
     * each kernel i in order (the caller seeds @p totals with the
     * per-step overhead). @p flops / @p bytes / @p tiles are
     * kernel-major planes — (kernel i, point j) at `i * n_points + j`,
     * the layout `StepPlan::evaluateSweep` fills.
     *
     * Bit-identity contract: per-kernel constants (peak rate, clamped
     * efficiency, launch overhead) are hoisted out of the point loop,
     * but every per-point expression keeps the scalar `simulate()`
     * terms in the same evaluation order, and the additions into
     * `totals[j]` happen in kernel order — exactly the order a scalar
     * per-point loop adds them — so each total matches the scalar path
     * to the last bit. Unlike the scalar path it skips the utilization
     * divisions a seconds-only caller never reads, which (with the
     * hoisting) is where the sweep speedup comes from.
     */
    void accumulateSweepSeconds(const KernelKind* kinds,
                                const double* efficiencies,
                                const double* counts,
                                std::size_t n_kernels,
                                const double* flops, const double* bytes,
                                const double* tiles, std::size_t n_points,
                                double* totals) const;

    /** The device being modelled. */
    const GpuSpec& gpu() const { return gpu_; }

    /** The calibration in effect. */
    const SimCalibration& calibration() const { return calib_; }

  private:
    /** Occupancy in (0, 1] from exposed tiles. */
    double occupancy(double tiles) const;

    /** Peak FLOP/s for a kernel kind at full occupancy. */
    double peakFlops(KernelKind kind) const;

    GpuSpec gpu_;
    SimCalibration calib_;
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_EXEC_MODEL_HPP
