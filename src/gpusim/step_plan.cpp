#include "gpusim/step_plan.hpp"

#include <algorithm>
#include <map>

#include "common/logging.hpp"

namespace ftsim {

KernelFormula
KernelFormula::gemm(RowsKind rows, double k, double n, double weight_bytes,
                    double flops_scale, double bytes_extra)
{
    KernelFormula f;
    f.eval = EvalKind::Gemm;
    f.rows = rows;
    f.a = k;
    f.b = n;
    f.c = weight_bytes;
    f.d = flops_scale;
    f.e = bytes_extra;
    return f;
}

KernelFormula
KernelFormula::rowwise(RowsKind rows, double width, double ops_per_element)
{
    KernelFormula f;
    f.eval = EvalKind::Rowwise;
    f.rows = rows;
    f.a = width;
    f.b = ops_per_element;
    return f;
}

KernelFormula
KernelFormula::attention(double flops_coef, double bytes_coef,
                         double d_model, double heads)
{
    KernelFormula f;
    f.eval = EvalKind::Attention;
    f.a = flops_coef;
    f.b = bytes_coef;
    f.c = d_model;
    f.d = heads;
    return f;
}

KernelFormula
KernelFormula::conv(double flops_coef, double bytes_coef, double d_inner,
                    double conv_k)
{
    KernelFormula f;
    f.eval = EvalKind::Conv;
    f.a = flops_coef;
    f.b = bytes_coef;
    f.c = d_inner;
    f.d = conv_k;
    return f;
}

KernelFormula
KernelFormula::scan(double flops_coef, double bytes_coef, double d_inner,
                    double tiles_per_row)
{
    KernelFormula f;
    f.eval = EvalKind::Scan;
    f.a = flops_coef;
    f.b = bytes_coef;
    f.c = d_inner;
    f.d = tiles_per_row;
    return f;
}

KernelFormula
KernelFormula::lora(RowsKind rows, double rank, double d_sum,
                    double bytes_tail)
{
    KernelFormula f;
    f.eval = EvalKind::Lora;
    f.rows = rows;
    f.a = rank;
    f.b = d_sum;
    f.c = bytes_tail;
    return f;
}

KernelFormula
KernelFormula::fixed(double flops, double bytes, double tiles)
{
    KernelFormula f;
    f.eval = EvalKind::Fixed;
    f.a = flops;
    f.b = bytes;
    f.c = tiles;
    return f;
}

void
KernelFormula::apply(double batch, double seq, double n_tok,
                     double tok_per_expert, double& flops, double& bytes,
                     double& tiles) const
{
    // Every expression below replicates the reference emission in
    // workload.cpp term-for-term, in the same evaluation order — the
    // bit-identity contract (see file comment in step_plan.hpp).
    const double m =
        rows == RowsKind::Tokens ? n_tok : tok_per_expert;
    switch (eval) {
      case EvalKind::Fixed:
        flops = a;
        bytes = b;
        tiles = c;
        break;
      case EvalKind::Gemm:
        // gemm(): 2 * paddedRows(m) * k * n, optionally scaled for
        // full-FT dX+dW; activation traffic + weight read (+ gradient
        // write when full-FT).
        flops = 2.0 * paddedRows(m) * a * b;
        flops *= d;
        bytes = kActBytes * (m * a + m * b) + c;
        bytes += e;
        tiles = ceilDivD(m, 32.0) * ceilDivD(b, 128.0);
        break;
      case EvalKind::Rowwise:
        // rowwise(): ops * rows * width; read + write.
        flops = b * m * a;
        bytes = 2.0 * kActBytes * m * a;
        tiles = m;
        break;
      case EvalKind::Attention:
        flops = a * n_tok * seq * c;
        bytes = b * kActBytes * n_tok * c;
        tiles = batch * d * ceilDivD(seq, 64.0);
        break;
      case EvalKind::Conv:
        flops = a * n_tok * c * d;
        bytes = b * kActBytes * n_tok * c;
        tiles = ceilDivD(n_tok * c, 4096.0);
        break;
      case EvalKind::Scan:
        flops = a * n_tok * c;
        bytes = b * kActBytes * n_tok * c;
        tiles = batch * d;
        break;
      case EvalKind::Lora:
        flops = paddedRows(m) * a * b;
        bytes = kActBytes * m * b / 2.0 + c;
        tiles = ceilDivD(m, 32.0);
        break;
    }
}

void
StepPlan::push(std::uint32_t name_id, KernelKind kind, LayerClass layer,
               Stage stage, double count, const KernelFormula& formula,
               double efficiency)
{
    nameIds.push_back(name_id);
    kinds.push_back(kind);
    layers.push_back(layer);
    stages.push_back(stage);
    counts.push_back(count);
    efficiencies.push_back(efficiency);
    formulas.push_back(formula);
}

void
StepPlan::finalize(const StringInterner& names)
{
    // MoE aggregation slots: lexicographic name order reproduces the
    // iteration order of the std::map the reference profile path uses.
    std::map<std::string, std::int32_t> slot_of;
    for (std::size_t i = 0; i < size(); ++i)
        if (layers[i] == LayerClass::MoE)
            slot_of.emplace(normalizeKernelName(names.name(nameIds[i])),
                            0);
    moeAggNames.clear();
    moeAggNames.reserve(slot_of.size());
    for (auto& [name, slot] : slot_of) {
        slot = static_cast<std::int32_t>(moeAggNames.size());
        moeAggNames.push_back(name);
    }
    moeSlot.assign(size(), -1);
    for (std::size_t i = 0; i < size(); ++i)
        if (layers[i] == LayerClass::MoE)
            moeSlot[i] =
                slot_of[normalizeKernelName(names.name(nameIds[i]))];

    // Distinct layer classes in ascending enum order (map iteration
    // order of the reference path).
    layersPresent.clear();
    for (LayerClass layer : layers)
        if (std::find(layersPresent.begin(), layersPresent.end(),
                      layer) == layersPresent.end())
            layersPresent.push_back(layer);
    std::sort(layersPresent.begin(), layersPresent.end(),
              [](LayerClass x, LayerClass y) {
                  return static_cast<std::uint8_t>(x) <
                         static_cast<std::uint8_t>(y);
              });
}

void
StepPlan::evaluate(std::size_t batch, std::size_t seq,
                   EvaluatedStep& out) const
{
    if (batch == 0 || seq == 0)
        fatal("WorkloadBuilder: zero batch or sequence length");
    const double b = static_cast<double>(batch);
    const double s = static_cast<double>(seq);
    const double n_tok = b * s;
    const double tok_per_expert = n_tok * activeExperts / nExperts;
    const std::size_t n = size();
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        formulas[i].apply(b, s, n_tok, tok_per_expert, out.flops[i],
                          out.bytes[i], out.tiles[i]);
}

void
StepPlan::evaluateSweep(const std::size_t* batches,
                        const std::size_t* seqs, std::size_t n_points,
                        SweepBuffers& out) const
{
    const std::size_t n = size();
    out.resize(n, n_points);

    // Per-point inputs, hoisted once for the whole sweep. The
    // tok_per_expert expression keeps the reference multiply-then-divide
    // order (see evaluate()).
    for (std::size_t j = 0; j < n_points; ++j) {
        if (batches[j] == 0 || seqs[j] == 0)
            fatal("WorkloadBuilder: zero batch or sequence length");
        const double b = static_cast<double>(batches[j]);
        const double s = static_cast<double>(seqs[j]);
        out.batches[j] = b;
        out.seqs[j] = s;
        out.nTok[j] = b * s;
        out.tokPerExpert[j] = out.nTok[j] * activeExperts / nExperts;
    }

    // Kernel-outer / point-inner: one formula dispatch per kernel, then
    // a straight-line loop over contiguous lanes. Every expression
    // below replicates KernelFormula::apply term-for-term in the same
    // evaluation order — the bit-identity contract (this TU is built
    // with -ffp-contract=off so no lane picks up an FMA).
    const double* n_tok = out.nTok.data();
    for (std::size_t i = 0; i < n; ++i) {
        const KernelFormula& f = formulas[i];
        double* F = out.flops.data() + i * n_points;
        double* B = out.bytes.data() + i * n_points;
        double* T = out.tiles.data() + i * n_points;
        const double* M = f.rows == RowsKind::Tokens
                              ? out.nTok.data()
                              : out.tokPerExpert.data();
        switch (f.eval) {
          case EvalKind::Fixed:
            for (std::size_t j = 0; j < n_points; ++j) {
                F[j] = f.a;
                B[j] = f.b;
                T[j] = f.c;
            }
            break;
          case EvalKind::Gemm:
            for (std::size_t j = 0; j < n_points; ++j) {
                const double m = M[j];
                double flops = 2.0 * paddedRows(m) * f.a * f.b;
                flops *= f.d;
                double bytes = kActBytes * (m * f.a + m * f.b) + f.c;
                bytes += f.e;
                F[j] = flops;
                B[j] = bytes;
                T[j] = ceilDivD(m, 32.0) * ceilDivD(f.b, 128.0);
            }
            break;
          case EvalKind::Rowwise:
            for (std::size_t j = 0; j < n_points; ++j) {
                const double m = M[j];
                F[j] = f.b * m * f.a;
                B[j] = 2.0 * kActBytes * m * f.a;
                T[j] = m;
            }
            break;
          case EvalKind::Attention:
            for (std::size_t j = 0; j < n_points; ++j) {
                F[j] = f.a * n_tok[j] * out.seqs[j] * f.c;
                B[j] = f.b * kActBytes * n_tok[j] * f.c;
                T[j] = out.batches[j] * f.d * ceilDivD(out.seqs[j], 64.0);
            }
            break;
          case EvalKind::Conv:
            for (std::size_t j = 0; j < n_points; ++j) {
                F[j] = f.a * n_tok[j] * f.c * f.d;
                B[j] = f.b * kActBytes * n_tok[j] * f.c;
                T[j] = ceilDivD(n_tok[j] * f.c, 4096.0);
            }
            break;
          case EvalKind::Scan:
            for (std::size_t j = 0; j < n_points; ++j) {
                F[j] = f.a * n_tok[j] * f.c;
                B[j] = f.b * kActBytes * n_tok[j] * f.c;
                T[j] = out.batches[j] * f.d;
            }
            break;
          case EvalKind::Lora:
            for (std::size_t j = 0; j < n_points; ++j) {
                const double m = M[j];
                F[j] = paddedRows(m) * f.a * f.b;
                B[j] = kActBytes * m * f.b / 2.0 + f.c;
                T[j] = ceilDivD(m, 32.0);
            }
            break;
        }
    }
}

void
StepPlan::evaluateSweep(std::size_t batch_lo, std::size_t batch_hi,
                        std::size_t seq, SweepBuffers& out) const
{
    if (batch_lo == 0 || batch_hi < batch_lo)
        fatal("StepPlan::evaluateSweep: bad batch range");
    const std::size_t n_points = batch_hi - batch_lo + 1;
    std::vector<std::size_t> batches(n_points);
    std::vector<std::size_t> seqs(n_points, seq);
    for (std::size_t j = 0; j < n_points; ++j)
        batches[j] = batch_lo + j;
    evaluateSweep(batches.data(), seqs.data(), n_points, out);
}

}  // namespace ftsim
