#ifndef FTSIM_GPUSIM_GPU_SPEC_HPP
#define FTSIM_GPUSIM_GPU_SPEC_HPP

/**
 * @file
 * GPU device descriptors.
 *
 * The paper profiles on an NVIDIA A40 and validates its analytical model
 * on A100-40GB, A100-80GB and H100-80GB. These specs capture the handful
 * of architectural quantities the execution model needs: SM count, dense
 * fp16/bf16 tensor throughput, vector (CUDA-core) throughput, DRAM
 * bandwidth and capacity, and the per-kernel launch cost.
 */

#include <string>
#include <vector>

namespace ftsim {

/** Architectural description of one GPU. */
struct GpuSpec {
    std::string name;
    /** DRAM capacity in decimal GB, the paper's convention (Eq. 1). */
    double memGB = 0.0;
    /** Streaming multiprocessor count. */
    int numSms = 0;
    /** Dense fp16/bf16 tensor-core throughput, TFLOP/s. */
    double tensorTflops = 0.0;
    /** Vector (CUDA-core fp32) throughput, TFLOP/s. */
    double vectorTflops = 0.0;
    /** Peak DRAM bandwidth, GB/s. */
    double dramGBps = 0.0;
    /** Hardware kernel-launch latency, microseconds. */
    double launchUs = 4.0;

    /** DRAM capacity in bytes (decimal). */
    double memBytes() const;

    // ----- Presets used in the paper -----

    /** NVIDIA A40 48 GB (Ampere GA102) — the profiling platform. */
    static GpuSpec a40();

    /** NVIDIA A100 40 GB (SXM). */
    static GpuSpec a100_40();

    /** NVIDIA A100 80 GB (SXM). */
    static GpuSpec a100_80();

    /** NVIDIA H100 80 GB (SXM). */
    static GpuSpec h100_80();

    /**
     * Hypothetical future GPU: A100-80 compute with the given capacity
     * (used for the Fig. 13 projection to 100 / 120 GB).
     */
    static GpuSpec hypothetical(double mem_gib);

    /** All four real presets, A40 first. */
    static std::vector<GpuSpec> paperGpus();

    /**
     * The paper preset named @p name, or nullptr when unknown — the
     * one wire-name-to-spec lookup the serving layer and benches
     * share. The pointee lives for the program's lifetime.
     */
    static const GpuSpec* byName(const std::string& name);
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_GPU_SPEC_HPP
