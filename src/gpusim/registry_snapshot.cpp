#include "gpusim/registry_snapshot.hpp"

#include <cstring>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace ftsim {

namespace {

constexpr char kMagic[6] = {'F', 'T', 'S', 'N', 'A', 'P'};
constexpr std::uint32_t kVersion = 1;
/** magic + version + payload length + checksum. */
constexpr std::size_t kHeaderBytes = 6 + 4 + 8 + 8;

/** Upper bounds of the serialized enums (inclusive). */
constexpr std::uint8_t kMaxKernelKind =
    static_cast<std::uint8_t>(KernelKind::Optimizer);
constexpr std::uint8_t kMaxLayerClass =
    static_cast<std::uint8_t>(LayerClass::OptimizerState);
constexpr std::uint8_t kMaxStage =
    static_cast<std::uint8_t>(Stage::Optimizer);
constexpr std::uint8_t kMaxEvalKind =
    static_cast<std::uint8_t>(EvalKind::Lora);
constexpr std::uint8_t kMaxRowsKind =
    static_cast<std::uint8_t>(RowsKind::TokensPerExpert);

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (char c : bytes) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

// ---- Writer ----------------------------------------------------------

void
putU8(std::string& out, std::uint8_t v)
{
    out += static_cast<char>(v);
}

void
putU32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void
putU64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

/** Bit-pattern write: doubles must round-trip exactly. */
void
putF64(std::string& out, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putStr(std::string& out, const std::string& s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out += s;
}

// ---- Bounds-checked reader -------------------------------------------

class Reader {
  public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    bool failed() const { return failed_; }

    const std::string& problem() const { return problem_; }

    std::size_t remaining() const { return bytes_.size() - pos_; }

    std::uint8_t u8()
    {
        if (!need(1))
            return 0;
        return static_cast<unsigned char>(bytes_[pos_++]);
    }

    std::uint32_t u32()
    {
        if (!need(4))
            return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64()
    {
        if (!need(8))
            return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string str()
    {
        const std::uint32_t n = u32();
        if (!need(n))
            return std::string();
        std::string s(bytes_.substr(pos_, n));
        pos_ += n;
        return s;
    }

    void fail(std::string why)
    {
        if (!failed_) {
            failed_ = true;
            problem_ = std::move(why);
        }
    }

  private:
    bool need(std::size_t n)
    {
        if (failed_)
            return false;
        if (remaining() < n) {
            fail(strCat("truncated: wanted ", n, " bytes, ",
                        remaining(), " left"));
            return false;
        }
        return true;
    }

    std::string_view bytes_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string problem_;
};

/** One parsed plan, staged before insertion (all-or-nothing load). */
struct ParsedPlan {
    std::string key;
    double activeExperts = 0.0;
    double nExperts = 0.0;
    /** Names by spelling; interned into the target at insert time. */
    std::vector<std::string> names;
    std::vector<KernelKind> kinds;
    std::vector<LayerClass> layers;
    std::vector<Stage> stages;
    std::vector<double> counts;
    std::vector<double> efficiencies;
    std::vector<KernelFormula> formulas;
};

std::uint8_t
checkedEnum(Reader& in, std::uint8_t max, const char* what)
{
    const std::uint8_t v = in.u8();
    if (!in.failed() && v > max)
        in.fail(strCat("out-of-range ", what, " value ",
                       static_cast<unsigned>(v)));
    return v;
}

}  // namespace

std::string
saveRegistrySnapshot(const PlanRegistry& registry)
{
    std::string payload;
    std::uint32_t plan_count = 0;
    std::string plans;
    const StringInterner& names = registry.names();
    registry.forEachReadyPlan([&](const std::string& key,
                                  const std::shared_ptr<const StepPlan>&
                                      plan) {
        ++plan_count;
        putStr(plans, key);
        putF64(plans, plan->activeExperts);
        putF64(plans, plan->nExperts);
        putU32(plans, static_cast<std::uint32_t>(plan->size()));
        for (std::size_t i = 0; i < plan->size(); ++i) {
            // Name ids are interner-local; the spelling is the portable
            // identity (the loader re-interns into its own registry).
            putStr(plans, names.name(plan->nameIds[i]));
            putU8(plans, static_cast<std::uint8_t>(plan->kinds[i]));
            putU8(plans, static_cast<std::uint8_t>(plan->layers[i]));
            putU8(plans, static_cast<std::uint8_t>(plan->stages[i]));
            putF64(plans, plan->counts[i]);
            putF64(plans, plan->efficiencies[i]);
            const KernelFormula& f = plan->formulas[i];
            putU8(plans, static_cast<std::uint8_t>(f.eval));
            putU8(plans, static_cast<std::uint8_t>(f.rows));
            putF64(plans, f.a);
            putF64(plans, f.b);
            putF64(plans, f.c);
            putF64(plans, f.d);
            putF64(plans, f.e);
        }
    });
    putU32(payload, plan_count);
    payload += plans;

    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    out.append(kMagic, sizeof(kMagic));
    putU32(out, kVersion);
    putU64(out, payload.size());
    putU64(out, fnv1a(payload));
    out += payload;
    return out;
}

Result<SnapshotLoadInfo>
loadRegistrySnapshot(PlanRegistry& registry, std::string_view snapshot)
{
    auto reject = [](std::string why) {
        return Error{ErrorCode::InvalidArgument,
                     strCat("bad registry snapshot: ", std::move(why))};
    };

    if (snapshot.size() < kHeaderBytes)
        return reject(strCat("only ", snapshot.size(),
                             " bytes, header needs ", kHeaderBytes));
    if (snapshot.compare(0, sizeof(kMagic),
                         std::string_view(kMagic, sizeof(kMagic))) != 0)
        return reject("magic mismatch (not a snapshot)");

    Reader header(snapshot.substr(sizeof(kMagic)));
    const std::uint32_t version = header.u32();
    if (version != kVersion)
        return reject(strCat("version ", version, ", expected ",
                             kVersion));
    const std::uint64_t payload_bytes = header.u64();
    const std::uint64_t checksum = header.u64();
    const std::string_view payload = snapshot.substr(kHeaderBytes);
    if (payload.size() != payload_bytes)
        return reject(strCat("payload length ", payload.size(),
                             " does not match declared ",
                             payload_bytes));
    if (fnv1a(payload) != checksum)
        return reject("checksum mismatch (corrupted bytes)");

    // Parse everything before touching the registry: a snapshot that
    // fails halfway must not leave a half-adopted fleet state.
    Reader in(payload);
    const std::uint32_t plan_count = in.u32();
    std::vector<ParsedPlan> parsed;
    for (std::uint32_t p = 0; p < plan_count && !in.failed(); ++p) {
        ParsedPlan plan;
        plan.key = in.str();
        if (!in.failed() && plan.key.empty())
            in.fail("empty plan key");
        plan.activeExperts = in.f64();
        plan.nExperts = in.f64();
        const std::uint32_t kernels = in.u32();
        // Each kernel serializes to >= 58 bytes; a declared count that
        // cannot fit the remaining payload is hostile, not huge.
        if (!in.failed() &&
            static_cast<std::uint64_t>(kernels) * 58 > in.remaining())
            in.fail(strCat("kernel count ", kernels,
                           " exceeds remaining payload"));
        for (std::uint32_t k = 0; k < kernels && !in.failed(); ++k) {
            plan.names.push_back(in.str());
            plan.kinds.push_back(static_cast<KernelKind>(
                checkedEnum(in, kMaxKernelKind, "KernelKind")));
            plan.layers.push_back(static_cast<LayerClass>(
                checkedEnum(in, kMaxLayerClass, "LayerClass")));
            plan.stages.push_back(static_cast<Stage>(
                checkedEnum(in, kMaxStage, "Stage")));
            plan.counts.push_back(in.f64());
            plan.efficiencies.push_back(in.f64());
            KernelFormula f;
            f.eval = static_cast<EvalKind>(
                checkedEnum(in, kMaxEvalKind, "EvalKind"));
            f.rows = static_cast<RowsKind>(
                checkedEnum(in, kMaxRowsKind, "RowsKind"));
            f.a = in.f64();
            f.b = in.f64();
            f.c = in.f64();
            f.d = in.f64();
            f.e = in.f64();
            plan.formulas.push_back(f);
        }
        parsed.push_back(std::move(plan));
    }
    if (!in.failed() && in.remaining() > 0)
        in.fail(strCat(in.remaining(), " trailing payload bytes"));
    if (in.failed())
        return reject(in.problem());

    SnapshotLoadInfo info;
    for (ParsedPlan& plan : parsed) {
        StepPlan built;
        built.activeExperts = plan.activeExperts;
        built.nExperts = plan.nExperts;
        for (std::size_t i = 0; i < plan.names.size(); ++i)
            built.push(registry.names().intern(plan.names[i]),
                       plan.kinds[i], plan.layers[i], plan.stages[i],
                       plan.counts[i], plan.formulas[i],
                       plan.efficiencies[i]);
        // The aggregation tables (moeSlot / layersPresent) derive from
        // the arrays deterministically; recomputing them here keeps the
        // wire format minimal and cannot disagree with the donor.
        built.finalize(registry.names());
        if (registry.insertLoaded(
                plan.key,
                std::make_shared<const StepPlan>(std::move(built))))
            ++info.plansLoaded;
        else
            ++info.plansSkipped;
    }
    return info;
}

}  // namespace ftsim
