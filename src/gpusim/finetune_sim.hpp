#ifndef FTSIM_GPUSIM_FINETUNE_SIM_HPP
#define FTSIM_GPUSIM_FINETUNE_SIM_HPP

/**
 * @file
 * End-to-end fine-tuning step simulator.
 *
 * Combines the workload builder and the execution model, and aggregates
 * per-kernel metrics into the paper's three breakdown levels:
 *
 *  - stage level (forward / backward / optimizer)          — Fig. 4
 *  - layer level (norms / attention / mamba / MoE / head)  — Fig. 5
 *  - kernel level inside the MoE layer                     — Fig. 6
 *
 * plus time-weighted SM and DRAM utilization (Figs. 9-10), step latency,
 * and queries/second throughput (Fig. 8).
 */

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "gpusim/exec_model.hpp"
#include "gpusim/workload.hpp"

namespace ftsim {

/** Per-kernel-name aggregate (forward + recompute + backward merged). */
struct KernelAggregate {
    std::string name;       ///< Normalized name, e.g. "matmul(w1)".
    double seconds = 0.0;
    double launches = 0.0;
    double flops = 0.0;
    double bytes = 0.0;
    /** Time-weighted SM utilization across the merged launches, %. */
    double smUtilPct = 0.0;
    /** Time-weighted DRAM bandwidth utilization, %. */
    double dramUtilPct = 0.0;
};

/** Per-layer-class aggregate (Fig. 5 rows). */
struct LayerAggregate {
    LayerClass layer = LayerClass::MoE;
    double seconds = 0.0;
};

/** Full profile of one simulated fine-tuning step. */
struct StepProfile {
    RunConfig config;
    double forwardSeconds = 0.0;
    double backwardSeconds = 0.0;   ///< Includes recomputation.
    double optimizerSeconds = 0.0;
    /** Per-step framework overhead (dataloader etc.). */
    double overheadSeconds = 0.0;
    /** Total step latency. */
    double stepSeconds = 0.0;
    /** Queries processed per second (paper's throughput metric). */
    double throughputQps = 0.0;
    /** Total kernel launches in the step. */
    double kernelLaunches = 0.0;

    /** Seconds by layer class, descending. */
    std::vector<LayerAggregate> byLayer;
    /** MoE-layer kernels by normalized name, descending by time. */
    std::vector<KernelAggregate> moeKernels;
    /** Time-weighted SM utilization over the MoE kernels, %. */
    double moeTimeWeightedSmPct = 0.0;
    /** Time-weighted DRAM utilization over the MoE kernels, %. */
    double moeTimeWeightedDramPct = 0.0;

    /** Fraction of step time spent in the MoE layer class. */
    double moeFractionOfStep() const;
};

/** One point of a throughput sweep. */
struct ThroughputPoint {
    std::size_t batchSize = 0;
    double qps = 0.0;
    double stepSeconds = 0.0;
};

/** Simulator facade: one model on one GPU. */
class FineTuneSim {
  public:
    /**
     * @param registry optional fleet-wide compiled-plan cache, handed
     *        through to the workload builder (see
     *        gpusim/plan_registry.hpp). Null keeps plans builder-local.
     */
    FineTuneSim(const ModelSpec& model, const GpuSpec& gpu,
                const SimCalibration& calib = {},
                std::shared_ptr<PlanRegistry> registry = nullptr);

    /**
     * Profiles one training step in full detail. Runs on the compiled
     * `StepPlan` path: the kernel graph is compiled once per config
     * shape and only the batch/seq-dependent terms are re-evaluated, so
     * repeated profiles (sweeps) do not rebuild the workload.
     */
    StepProfile profileStep(const RunConfig& config) const;

    /** Step latency only (cheaper call sites); compiled-plan path. */
    double stepSeconds(const RunConfig& config) const;

    /**
     * Full profiles for a whole batch sweep in one vectorized pass:
     * `StepPlan::evaluateSweep` fills the kernel-major planes for every
     * config, then each profile aggregates from its plane column.
     * Configs are grouped by compiled plan (consecutive configs sharing
     * a shape evaluate together), so a mixed dense+sparse grid like
     * `sweepConfigs()` still works. Element i is bit-identical to
     * `profileStep(configs[i])`; counts toward stepsSimulated() once
     * per config.
     */
    std::vector<StepProfile> profileSweep(
        const std::vector<RunConfig>& configs) const;

    /**
     * The retained reference implementation of profileStep: rebuilds
     * the full `KernelDesc` workload on every call, exactly as the
     * pre-compiled-plan code did. Bit-identical to profileStep — golden
     * tests pin the equality, and the perf bench uses it as the
     * baseline. Counts toward stepsSimulated().
     */
    StepProfile profileStepReference(const RunConfig& config) const;

    /** Reference twin of stepSeconds (per-call workload rebuild). */
    double stepSecondsReference(const RunConfig& config) const;

    /**
     * Queries/second at the given configuration. @p seq_len is the
     * dataset's *median* length; @p length_sigma is the log-normal shape
     * of the length distribution — batches pad every query to the batch
     * maximum, so the effective per-query token count grows with batch
     * size (0 disables the padding model).
     */
    double throughput(std::size_t batch, std::size_t seq_len, bool sparse,
                      double length_sigma = 0.0) const;

    /**
     * Throughput at batch sizes 1..max_batch (Figs. 8, 14, 15).
     * `InvalidArgument` when max_batch is 0. Runs as one vectorized
     * pass over the compiled plan (`StepPlan::evaluateSweep` + the
     * execution model's sweep accumulator) — every point is
     * deterministic and bit-identical to a per-batch `stepSeconds`
     * loop. @p threads is retained for API compatibility: the single
     * pass is cheaper than any per-batch fan-out, so the value no
     * longer affects execution (and never affected the results).
     */
    Result<std::vector<ThroughputPoint>> throughputSweep(
        std::size_t seq_len, bool sparse, std::size_t max_batch,
        double length_sigma = 0.0, unsigned threads = 1) const;

    /** Effective (padding-amplified) sequence length for a batch. */
    std::size_t paddedSeqLen(std::size_t seq_len, std::size_t batch,
                             double length_sigma) const;

    /**
     * The dense + sparse full-sweep grid on this sim's GPU: for each
     * routing mode that fits at batch 1, configs at batch 1..max with
     * padding-amplified sequence lengths. This is the single
     * definition of the sweep `Planner::throughputObservations`
     * simulates (and the perf bench times) — keep them in lockstep by
     * construction, not by copy.
     */
    std::vector<RunConfig> sweepConfigs(std::size_t median_seq_len,
                                        double length_sigma) const;

    /** The model spec. */
    const ModelSpec& model() const { return model_; }

    /** The GPU spec. */
    const GpuSpec& gpu() const { return exec_.gpu(); }

    /** The workload builder (for tests and ablations). */
    const WorkloadBuilder& workload() const { return builder_; }

    /** The execution model. */
    const ExecutionModel& exec() const { return exec_; }

    /**
     * Number of full training steps simulated so far (profileStep or
     * stepSeconds calls; sweep entry points count once per batch size).
     * Cache layers above (see core/planner.hpp) use this to prove that
     * repeated queries do not re-simulate — each step simulation walks
     * the whole kernel workload and dominates query latency.
     */
    std::uint64_t stepsSimulated() const { return steps_simulated_; }

  private:
    /**
     * Aggregates one step profile from per-kernel FLOPs/bytes/tiles at
     * stride @p stride (1 for an `EvaluatedStep`, n_points for a column
     * of `SweepBuffers` planes). The single source of the aggregation
     * arithmetic for profileStep and profileSweep.
     */
    StepProfile profileFromEval(const StepPlan& plan,
                                const RunConfig& config,
                                const double* flops, const double* bytes,
                                const double* tiles,
                                std::size_t stride) const;

    ModelSpec model_;
    WorkloadBuilder builder_;
    ExecutionModel exec_;
    /** Instrumentation only; atomic so const queries stay thread-safe. */
    mutable std::atomic<std::uint64_t> steps_simulated_{0};
};

// normalizeKernelName moved to gpusim/kernel.hpp (it is a kernel-name
// utility shared with the plan compiler); still visible via this header.

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_FINETUNE_SIM_HPP
