#include "gpusim/plan_registry.hpp"

#include <chrono>

namespace ftsim {

std::shared_ptr<const StepPlan>
PlanRegistry::plan(const std::string& key,
                   const std::function<StepPlan()>& compile)
{
    std::packaged_task<std::shared_ptr<const StepPlan>()> task;
    std::shared_future<std::shared_ptr<const StepPlan>> future;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = plans_.find(key);
        if (it != plans_.end()) {
            hits_.fetch_add(1);
            future = it->second;
        } else {
            task = std::packaged_task<
                std::shared_ptr<const StepPlan>()>([&compile] {
                return std::make_shared<const StepPlan>(compile());
            });
            future = task.get_future().share();
            plans_.emplace(key, future);
        }
    }
    // Compile *outside* the registry lock (same discipline as the
    // planner's step cache): other keys proceed in parallel, racers on
    // this key wait on the shared future.
    if (task.valid()) {
        task();
        compiled_.fetch_add(1);
    }
    return future.get();
}

bool
PlanRegistry::insertLoaded(const std::string& key,
                           std::shared_ptr<const StepPlan> plan)
{
    std::promise<std::shared_ptr<const StepPlan>> ready;
    ready.set_value(std::move(plan));
    std::lock_guard<std::mutex> lock(mutex_);
    const bool inserted =
        plans_.emplace(key, ready.get_future().share()).second;
    if (inserted)
        loaded_.fetch_add(1);
    return inserted;
}

void
PlanRegistry::forEachReadyPlan(
    const std::function<void(const std::string&,
                             const std::shared_ptr<const StepPlan>&)>&
        visit) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, future] : plans_) {
        if (future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
            continue;  // Mid-compile: the snapshot skips it.
        visit(key, future.get());
    }
}

}  // namespace ftsim
