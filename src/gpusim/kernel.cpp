#include "gpusim/kernel.hpp"

namespace ftsim {

const char*
kernelKindName(KernelKind kind)
{
    switch (kind) {
      case KernelKind::MatMul:
        return "matmul";
      case KernelKind::Attention:
        return "attention";
      case KernelKind::Dequant:
        return "dequant";
      case KernelKind::Softmax:
        return "softmax";
      case KernelKind::TopK:
        return "topk";
      case KernelKind::Sigmoid:
        return "sigmoid";
      case KernelKind::Gelu:
        return "gelu";
      case KernelKind::Silu:
        return "silu";
      case KernelKind::Elementwise:
        return "elementwise";
      case KernelKind::Norm:
        return "norm";
      case KernelKind::Conv:
        return "conv";
      case KernelKind::Scan:
        return "scan";
      case KernelKind::Optimizer:
        return "optimizer";
    }
    return "unknown";
}

const char*
layerClassName(LayerClass layer)
{
    switch (layer) {
      case LayerClass::InputNorm:
        return "Input normalization";
      case LayerClass::Attention:
        return "Attention";
      case LayerClass::PostAttnNorm:
        return "Post attention norm.";
      case LayerClass::MoE:
        return "MoE";
      case LayerClass::RmsNorm:
        return "RMS layernorm";
      case LayerClass::Mamba:
        return "Mamba";
      case LayerClass::Head:
        return "Embedding/Head";
      case LayerClass::OptimizerState:
        return "Optimizer";
    }
    return "unknown";
}

std::string
normalizeKernelName(const std::string& name)
{
    std::string out = name;
    const std::string recompute = " (recompute)";
    if (out.size() > recompute.size() &&
        out.compare(out.size() - recompute.size(), recompute.size(),
                    recompute) == 0)
        out.erase(out.size() - recompute.size());
    // "matmul(w1_bwd)" -> "matmul(w1)"; "softmax_bwd" -> "softmax".
    // Erase every marker, re-scanning from the start so markers formed
    // by the join of two fragments are caught too.
    for (auto pos = out.find("_bwd"); pos != std::string::npos;
         pos = out.find("_bwd"))
        out.erase(pos, 4);
    return out;
}

const char*
stageName(Stage stage)
{
    switch (stage) {
      case Stage::Forward:
        return "Forward";
      case Stage::Backward:
        return "Backward";
      case Stage::Optimizer:
        return "Optimizer";
    }
    return "unknown";
}

}  // namespace ftsim
