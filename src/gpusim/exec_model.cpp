#include "gpusim/exec_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace ftsim {

ExecutionModel::ExecutionModel(const GpuSpec& gpu,
                               const SimCalibration& calib)
    : gpu_(gpu), calib_(calib)
{
    if (gpu_.numSms <= 0 || gpu_.tensorTflops <= 0.0 ||
        gpu_.dramGBps <= 0.0)
        fatal("ExecutionModel: incomplete GPU spec");
}

double
ExecutionModel::occupancy(double tiles) const
{
    const double full =
        static_cast<double>(gpu_.numSms) * calib_.blocksPerSm;
    return std::clamp(tiles / full, calib_.minOccupancy, 1.0);
}

double
ExecutionModel::peakFlops(KernelKind kind) const
{
    switch (kind) {
      case KernelKind::MatMul:
      case KernelKind::Attention:
        return gpu_.tensorTflops * 1e12 * calib_.matmulEfficiency;
      case KernelKind::Dequant:
        return gpu_.vectorTflops * 1e12 * calib_.dequantEfficiency;
      default:
        return gpu_.vectorTflops * 1e12 * calib_.vectorEfficiency;
    }
}

KernelMetrics
ExecutionModel::simulate(const KernelDesc& kernel) const
{
    return simulate(kernel.kind, kernel.flops, kernel.bytes, kernel.tiles,
                    kernel.efficiency, kernel.count);
}

KernelMetrics
ExecutionModel::simulate(KernelKind kind, double flops, double bytes,
                         double tiles, double efficiency,
                         double count) const
{
    if (count <= 0.0)
        fatal("ExecutionModel::simulate: non-positive launch count");

    const double occ = occupancy(tiles);
    const double eff = std::clamp(efficiency, 1e-3, 1.0);
    const double compute_rate = peakFlops(kind) * occ * eff;
    // A handful of thread blocks already saturates DRAM bandwidth
    // (real kernels re-tile to stay occupied); only genuinely tiny
    // launches fall off the saturated rate.
    const double mem_occ = std::min(1.0, tiles / 12.0);
    const double mem_rate = gpu_.dramGBps * 1e9 *
                            calib_.memoryEfficiency *
                            std::max(mem_occ, 0.1);

    const double t_compute = flops > 0.0 ? flops / compute_rate : 0.0;
    const double t_mem = bytes > 0.0 ? bytes / mem_rate : 0.0;
    const double device_time = std::max(t_compute, t_mem);
    const double overhead =
        (gpu_.launchUs + calib_.hostOverheadUs) * 1e-6;

    KernelMetrics metrics;
    metrics.memoryBound = t_mem > t_compute;
    metrics.seconds = (device_time + overhead) * count;
    if (device_time > 0.0) {
        metrics.achievedFlops = flops / device_time;
        // SM% ~ how busy the compute pipes are while the kernel runs:
        // occupancy when compute-bound, scaled down by the fraction of
        // time compute actually limits when memory-bound.
        metrics.smUtilPct =
            100.0 * occ * eff *
            (device_time > 0.0 ? t_compute / device_time : 0.0);
        // DRAM% ~ achieved bandwidth vs peak.
        metrics.dramUtilPct =
            100.0 * (bytes / device_time) / (gpu_.dramGBps * 1e9);
        metrics.dramUtilPct = std::min(metrics.dramUtilPct, 100.0);
        metrics.smUtilPct = std::min(metrics.smUtilPct, 100.0);
    }
    return metrics;
}

void
ExecutionModel::accumulateSweepSeconds(
    const KernelKind* kinds, const double* efficiencies,
    const double* counts, std::size_t n_kernels, const double* flops,
    const double* bytes, const double* tiles, std::size_t n_points,
    double* totals) const
{
    // Sweep-invariant constants. Each matches the exact sub-expression
    // the scalar simulate() evaluates (same association order), so
    // hoisting them cannot change a bit.
    const double full =
        static_cast<double>(gpu_.numSms) * calib_.blocksPerSm;
    const double mem_base =
        gpu_.dramGBps * 1e9 * calib_.memoryEfficiency;
    const double overhead =
        (gpu_.launchUs + calib_.hostOverheadUs) * 1e-6;

    for (std::size_t i = 0; i < n_kernels; ++i) {
        if (counts[i] <= 0.0)
            fatal("ExecutionModel::simulate: non-positive launch count");
        // Per-kernel constants hoisted out of the point loop: the peak
        // rate is a pure selection and the efficiency clamp is exact.
        const double peak = peakFlops(kinds[i]);
        const double eff = std::clamp(efficiencies[i], 1e-3, 1.0);
        const double count = counts[i];
        const double* F = flops + i * n_points;
        const double* B = bytes + i * n_points;
        const double* T = tiles + i * n_points;
        for (std::size_t j = 0; j < n_points; ++j) {
            const double occ =
                std::clamp(T[j] / full, calib_.minOccupancy, 1.0);
            const double compute_rate = peak * occ * eff;
            const double mem_occ = std::min(1.0, T[j] / 12.0);
            const double mem_rate = mem_base * std::max(mem_occ, 0.1);
            const double t_compute =
                F[j] > 0.0 ? F[j] / compute_rate : 0.0;
            const double t_mem = B[j] > 0.0 ? B[j] / mem_rate : 0.0;
            totals[j] +=
                (std::max(t_compute, t_mem) + overhead) * count;
        }
    }
}

}  // namespace ftsim
