#include "gpusim/gpu_spec.hpp"

#include "common/math_util.hpp"

namespace ftsim {

double
GpuSpec::memBytes() const
{
    return memGB * 1e9;
}

GpuSpec
GpuSpec::a40()
{
    GpuSpec spec;
    spec.name = "A40";
    spec.memGB = 48.0;
    spec.numSms = 84;
    spec.tensorTflops = 149.7;  // Dense fp16 tensor core.
    spec.vectorTflops = 37.4;   // fp32 CUDA core.
    spec.dramGBps = 696.0;
    spec.launchUs = 4.0;
    return spec;
}

GpuSpec
GpuSpec::a100_40()
{
    GpuSpec spec;
    spec.name = "A100-40GB";
    spec.memGB = 40.0;
    spec.numSms = 108;
    spec.tensorTflops = 312.0;
    spec.vectorTflops = 19.5;
    spec.dramGBps = 1555.0;
    spec.launchUs = 4.0;
    return spec;
}

GpuSpec
GpuSpec::a100_80()
{
    GpuSpec spec = a100_40();
    spec.name = "A100-80GB";
    spec.memGB = 80.0;
    spec.dramGBps = 1935.0;
    return spec;
}

GpuSpec
GpuSpec::h100_80()
{
    GpuSpec spec;
    spec.name = "H100";
    spec.memGB = 80.0;
    spec.numSms = 132;
    spec.tensorTflops = 989.0;  // Dense bf16 (SXM).
    spec.vectorTflops = 66.9;
    spec.dramGBps = 3350.0;
    spec.launchUs = 3.0;
    return spec;
}

GpuSpec
GpuSpec::hypothetical(double mem_gib)
{
    GpuSpec spec = a100_80();
    spec.name = "Hypothetical-" + std::to_string(static_cast<int>(mem_gib)) +
                "GB";
    spec.memGB = mem_gib;
    return spec;
}

std::vector<GpuSpec>
GpuSpec::paperGpus()
{
    return {a40(), a100_40(), a100_80(), h100_80()};
}

const GpuSpec*
GpuSpec::byName(const std::string& name)
{
    // Function-local static: initialized once, thread-safe, and the
    // returned pointers stay valid for the program's lifetime.
    static const std::vector<GpuSpec> presets = paperGpus();
    for (const GpuSpec& gpu : presets)
        if (gpu.name == name)
            return &gpu;
    return nullptr;
}

}  // namespace ftsim
