#ifndef FTSIM_GPUSIM_STEP_PLAN_HPP
#define FTSIM_GPUSIM_STEP_PLAN_HPP

/**
 * @file
 * Compiled step plans: the allocation-free representation of one
 * training step's kernel sequence.
 *
 * `WorkloadBuilder::buildStep` materializes a fresh
 * `std::vector<KernelDesc>` — every element carrying a `std::string`
 * name — on every call, so a 1..max_batch throughput sweep rebuilds the
 * identical kernel graph max_batch times. A `StepPlan` is that graph
 * compiled once per (model, config-shape): the batch-independent kernel
 * fields (interned name id, kind, layer class, stage, launch count) live
 * in SoA arrays, and each kernel carries a tiny `KernelFormula` that
 * recomputes only the batch/seq-dependent FLOPs / bytes / tiles terms.
 * `evaluate()` writes into caller-owned reusable buffers, so the
 * simulation hot path performs no heap allocation at all.
 *
 * Bit-identity contract: `KernelFormula::apply` reproduces the exact
 * floating-point expressions (including evaluation order) of the
 * reference emission path in workload.cpp, and both paths share the
 * `ceilDivD` / `paddedRows` / `kActBytes` helpers below. The golden
 * tests in tests/gpusim/test_step_plan.cpp pin the two paths equal to
 * the last bit.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/interner.hpp"
#include "gpusim/kernel.hpp"

namespace ftsim {

// ---- Shared arithmetic helpers (reference path + compiled path) ------

/** fp16 activation bytes per element. */
inline constexpr double kActBytes = 2.0;

/** Ceiling division on doubles. */
inline double
ceilDivD(double a, double b)
{
    return std::ceil(a / b);
}

/**
 * Rows padded to the 32-row tensor-core tile: a GEMM with m = 5 costs
 * the same as m = 32 (the hardware computes whole tiles), which is what
 * makes small-batch expert GEMMs inefficient and SM utilization low.
 */
inline double
paddedRows(double m)
{
    return ceilDivD(m, 32.0) * 32.0;
}

// ---- Per-kernel formulas ---------------------------------------------

/** Row-count source of a batch-dependent kernel. */
enum class RowsKind : std::uint8_t {
    Tokens,           ///< batch * seq.
    TokensPerExpert,  ///< tokens * active / experts.
};

/** Evaluation rule of one kernel's batch-dependent terms. */
enum class EvalKind : std::uint8_t {
    Fixed,      ///< Batch-independent (dequant, optimizer): precomputed.
    Gemm,       ///< Whole-tile GEMM accounting.
    Rowwise,    ///< Softmax/topk/norm/activation rows.
    Attention,  ///< Fused flash-attention (quadratic in seq).
    Conv,       ///< Depthwise causal conv1d.
    Scan,       ///< Selective scan (tiles scale with batch only).
    Lora,       ///< LoRA adapter GEMM pair.
};

/**
 * One kernel's FLOPs/bytes/tiles as a function of (batch, seq). The
 * five parameter slots are interpreted per `eval` (see the factory
 * functions); all model-derived constants are baked in at compile time
 * with the same expressions the reference emission uses.
 */
struct KernelFormula {
    EvalKind eval = EvalKind::Fixed;
    RowsKind rows = RowsKind::Tokens;
    double a = 0.0;
    double b = 0.0;
    double c = 0.0;
    double d = 0.0;
    double e = 0.0;

    /** Gemm: a=k, b=n, c=weightBytes, d=flopsScale, e=bytesExtra. */
    static KernelFormula gemm(RowsKind rows, double k, double n,
                              double weight_bytes, double flops_scale,
                              double bytes_extra);
    /** Rowwise: a=width, b=opsPerElement. */
    static KernelFormula rowwise(RowsKind rows, double width,
                                 double ops_per_element);
    /** Attention: a=flopsCoef, b=bytesCoef, c=dModel, d=heads. */
    static KernelFormula attention(double flops_coef, double bytes_coef,
                                   double d_model, double heads);
    /** Conv: a=flopsCoef, b=bytesCoef, c=dInner, d=convK. */
    static KernelFormula conv(double flops_coef, double bytes_coef,
                              double d_inner, double conv_k);
    /** Scan: a=flopsCoef, b=bytesCoef, c=dInner, d=tilesPerBatchRow. */
    static KernelFormula scan(double flops_coef, double bytes_coef,
                              double d_inner, double tiles_per_row);
    /** Lora: a=rank, b=d+dff, c=bytesTail (batch-independent term). */
    static KernelFormula lora(RowsKind rows, double rank, double d_sum,
                              double bytes_tail);
    /** Fixed: a=flops, b=bytes, c=tiles (batch-independent). */
    static KernelFormula fixed(double flops, double bytes, double tiles);

    /** Evaluates the formula; mirrors the reference arithmetic. */
    void apply(double batch, double seq, double n_tok,
               double tok_per_expert, double& flops, double& bytes,
               double& tiles) const;
};

// ---- The compiled plan -----------------------------------------------

/** Reusable evaluation buffers (one set per thread suffices). */
struct EvaluatedStep {
    std::vector<double> flops;
    std::vector<double> bytes;
    std::vector<double> tiles;

    void resize(std::size_t n)
    {
        flops.resize(n);
        bytes.resize(n);
        tiles.resize(n);
    }
};

/**
 * Reusable buffers for `StepPlan::evaluateSweep`: the per-point inputs
 * plus kernel-major FLOPs/bytes/tiles planes. Element (kernel i,
 * sweep point j) lives at index `i * points() + j`, so the batch-inner
 * loops walk unit-stride memory. One set per thread suffices.
 */
struct SweepBuffers {
    // Per sweep point (batch 1..max in a full sweep).
    std::vector<double> batches;
    std::vector<double> seqs;
    std::vector<double> nTok;          ///< batch * seq.
    std::vector<double> tokPerExpert;  ///< nTok * active / experts.

    // Kernel-major planes, size() == n_kernels * points().
    std::vector<double> flops;
    std::vector<double> bytes;
    std::vector<double> tiles;

    /** Number of sweep points the buffers currently hold. */
    std::size_t points() const { return batches.size(); }

    void resize(std::size_t n_kernels, std::size_t n_points)
    {
        batches.resize(n_points);
        seqs.resize(n_points);
        nTok.resize(n_points);
        tokPerExpert.resize(n_points);
        flops.resize(n_kernels * n_points);
        bytes.resize(n_kernels * n_points);
        tiles.resize(n_kernels * n_points);
    }
};

/**
 * One compiled training step: SoA arrays of the batch-independent
 * kernel fields plus one formula per kernel. Kernels appear in the
 * exact order the reference `buildStep` emits them.
 */
struct StepPlan {
    /** Active experts under the plan's routing mode, as a double. */
    double activeExperts = 0.0;
    /** Total experts, as a double (tok_per_expert denominator). */
    double nExperts = 0.0;

    // Batch-independent per-kernel fields (SoA).
    std::vector<std::uint32_t> nameIds;  ///< Into the builder's interner.
    std::vector<KernelKind> kinds;
    std::vector<LayerClass> layers;
    std::vector<Stage> stages;
    std::vector<double> counts;
    std::vector<double> efficiencies;  ///< KernelDesc::efficiency mirror.
    std::vector<KernelFormula> formulas;

    // Precompiled aggregation structure for the profile fast path.
    /** Per kernel: index into moeAggNames, or -1 if not an MoE kernel. */
    std::vector<std::int32_t> moeSlot;
    /** Normalized MoE aggregate names, lexicographically ordered (the
     *  same order a std::map<std::string, ...> iterates in). */
    std::vector<std::string> moeAggNames;
    /** Distinct layer classes present, ascending enum order (the same
     *  order a std::map<LayerClass, ...> iterates in). */
    std::vector<LayerClass> layersPresent;

    /** Number of kernels in the plan. */
    std::size_t size() const { return formulas.size(); }

    /** Appends one kernel. @p efficiency mirrors KernelDesc's default;
     *  an emission that sets a non-default value must pass it here so
     *  the compiled path stays bit-identical to the reference. */
    void push(std::uint32_t name_id, KernelKind kind, LayerClass layer,
              Stage stage, double count, const KernelFormula& formula,
              double efficiency = 1.0);

    /** Builds moeSlot / moeAggNames / layersPresent; call once after
     *  the last push(). */
    void finalize(const StringInterner& names);

    /**
     * Evaluates every kernel's FLOPs/bytes/tiles at (batch, seq) into
     * @p out (resized as needed; reuse it across calls to stay
     * allocation-free). Matches the reference emission bit-for-bit.
     */
    void evaluate(std::size_t batch, std::size_t seq,
                  EvaluatedStep& out) const;

    /**
     * Evaluates every kernel at *all* @p n_points sweep points in one
     * pass: the loops run kernel-outer / point-inner with the per-kernel
     * formula dispatch hoisted out of the inner loop, so each EvalKind
     * body is a straight-line loop over contiguous arrays that the
     * compiler can auto-vectorize. @p batches and @p seqs are parallel
     * arrays (a full sweep pads the sequence length per batch, so seq
     * varies along the sweep). Bit-identity contract: point j of the
     * output planes equals `evaluate(batches[j], seqs[j], ...)` to the
     * last bit — the per-kind expressions are the same terms in the
     * same order, and this TU is compiled with `-ffp-contract=off` so
     * no FMA contraction can perturb a lane.
     */
    void evaluateSweep(const std::size_t* batches, const std::size_t* seqs,
                       std::size_t n_points, SweepBuffers& out) const;

    /**
     * Convenience overload: the contiguous batch range
     * [batch_lo, batch_hi] at one fixed sequence length.
     */
    void evaluateSweep(std::size_t batch_lo, std::size_t batch_hi,
                       std::size_t seq, SweepBuffers& out) const;
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_STEP_PLAN_HPP
