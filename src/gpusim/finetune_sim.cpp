#include "gpusim/finetune_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hpp"
#include "common/math_util.hpp"
#include "gpusim/memory_model.hpp"

namespace ftsim {

namespace {

/** Per-aggregate accumulator shared by both profile paths. */
struct NamedAgg {
    double seconds = 0.0;
    double launches = 0.0;
    double flops = 0.0;
    double bytes = 0.0;
    double sm_weighted = 0.0;
    double dram_weighted = 0.0;
};

}  // namespace

double
StepProfile::moeFractionOfStep() const
{
    // Fig. 5 is a *layer* breakdown: optimizer-state work is a stage of
    // its own (Fig. 4) and is excluded here.
    double moe = 0.0;
    double total = 0.0;
    for (const auto& layer : byLayer) {
        if (layer.layer == LayerClass::OptimizerState)
            continue;
        total += layer.seconds;
        if (layer.layer == LayerClass::MoE)
            moe += layer.seconds;
    }
    return total > 0.0 ? moe / total : 0.0;
}

FineTuneSim::FineTuneSim(const ModelSpec& model, const GpuSpec& gpu,
                         const SimCalibration& calib,
                         std::shared_ptr<PlanRegistry> registry)
    : model_(model), builder_(model, std::move(registry)),
      exec_(gpu, calib)
{
}

StepProfile
FineTuneSim::profileStep(const RunConfig& config) const
{
    ++steps_simulated_;
    const StepPlan& plan = builder_.stepPlan(config);
    // Reusable per-thread buffers keep the hot path allocation-free.
    static thread_local EvaluatedStep eval;
    plan.evaluate(config.batchSize, config.seqLen, eval);
    return profileFromEval(plan, config, eval.flops.data(),
                           eval.bytes.data(), eval.tiles.data(), 1);
}

StepProfile
FineTuneSim::profileFromEval(const StepPlan& plan, const RunConfig& config,
                             const double* flops, const double* bytes,
                             const double* tiles,
                             std::size_t stride) const
{
    StepProfile profile;
    profile.config = config;

    double layer_seconds[kLayerClassCount] = {};
    static thread_local std::vector<NamedAgg> moe_aggs;
    moe_aggs.assign(plan.moeAggNames.size(), NamedAgg{});

    const std::size_t n = plan.size();
    for (std::size_t i = 0; i < n; ++i) {
        const KernelMetrics m =
            exec_.simulate(plan.kinds[i], flops[i * stride],
                           bytes[i * stride], tiles[i * stride],
                           plan.efficiencies[i], plan.counts[i]);
        switch (plan.stages[i]) {
          case Stage::Forward:
            profile.forwardSeconds += m.seconds;
            break;
          case Stage::Backward:
            profile.backwardSeconds += m.seconds;
            break;
          case Stage::Optimizer:
            profile.optimizerSeconds += m.seconds;
            break;
        }
        layer_seconds[static_cast<std::size_t>(plan.layers[i])] +=
            m.seconds;
        profile.kernelLaunches += plan.counts[i];

        const std::int32_t slot = plan.moeSlot[i];
        if (slot >= 0) {
            NamedAgg& agg = moe_aggs[static_cast<std::size_t>(slot)];
            agg.seconds += m.seconds;
            agg.launches += plan.counts[i];
            agg.flops += flops[i * stride] * plan.counts[i];
            agg.bytes += bytes[i * stride] * plan.counts[i];
            agg.sm_weighted += m.smUtilPct * m.seconds;
            agg.dram_weighted += m.dramUtilPct * m.seconds;
        }
    }

    // Emission order below (layersPresent ascending, MoE slots in
    // lexicographic name order) replicates the reference path's
    // std::map iteration, so the sorted outputs match bit-for-bit.
    for (LayerClass layer : plan.layersPresent)
        profile.byLayer.push_back(
            {layer, layer_seconds[static_cast<std::size_t>(layer)]});
    std::sort(profile.byLayer.begin(), profile.byLayer.end(),
              [](const LayerAggregate& a, const LayerAggregate& b) {
                  return a.seconds > b.seconds;
              });

    double moe_total = 0.0;
    double moe_sm = 0.0;
    double moe_dram = 0.0;
    for (std::size_t slot = 0; slot < moe_aggs.size(); ++slot) {
        const NamedAgg& agg = moe_aggs[slot];
        KernelAggregate ka;
        ka.name = plan.moeAggNames[slot];
        ka.seconds = agg.seconds;
        ka.launches = agg.launches;
        ka.flops = agg.flops;
        ka.bytes = agg.bytes;
        // Clamp: the time-weighted mean of values <= 100 can exceed 100
        // by floating-point round-off.
        ka.smUtilPct = agg.seconds > 0.0
                           ? std::min(agg.sm_weighted / agg.seconds, 100.0)
                           : 0.0;
        ka.dramUtilPct =
            agg.seconds > 0.0
                ? std::min(agg.dram_weighted / agg.seconds, 100.0)
                : 0.0;
        profile.moeKernels.push_back(std::move(ka));
        moe_total += agg.seconds;
        moe_sm += agg.sm_weighted;
        moe_dram += agg.dram_weighted;
    }
    std::sort(profile.moeKernels.begin(), profile.moeKernels.end(),
              [](const KernelAggregate& a, const KernelAggregate& b) {
                  return a.seconds > b.seconds;
              });
    if (moe_total > 0.0) {
        profile.moeTimeWeightedSmPct = moe_sm / moe_total;
        profile.moeTimeWeightedDramPct = moe_dram / moe_total;
    }

    profile.overheadSeconds = exec_.calibration().stepOverheadMs * 1e-3;
    profile.stepSeconds = profile.forwardSeconds +
                          profile.backwardSeconds +
                          profile.optimizerSeconds +
                          profile.overheadSeconds;
    profile.throughputQps =
        static_cast<double>(config.batchSize) / profile.stepSeconds;
    return profile;
}

StepProfile
FineTuneSim::profileStepReference(const RunConfig& config) const
{
    ++steps_simulated_;
    StepProfile profile;
    profile.config = config;

    std::map<LayerClass, double> layer_seconds;
    std::map<std::string, NamedAgg> moe_aggs;

    for (const KernelDesc& kd : builder_.buildStep(config)) {
        const KernelMetrics m = exec_.simulate(kd);
        switch (kd.stage) {
          case Stage::Forward:
            profile.forwardSeconds += m.seconds;
            break;
          case Stage::Backward:
            profile.backwardSeconds += m.seconds;
            break;
          case Stage::Optimizer:
            profile.optimizerSeconds += m.seconds;
            break;
        }
        layer_seconds[kd.layer] += m.seconds;
        profile.kernelLaunches += kd.count;

        if (kd.layer == LayerClass::MoE) {
            NamedAgg& agg = moe_aggs[normalizeKernelName(kd.name)];
            agg.seconds += m.seconds;
            agg.launches += kd.count;
            agg.flops += kd.flops * kd.count;
            agg.bytes += kd.bytes * kd.count;
            agg.sm_weighted += m.smUtilPct * m.seconds;
            agg.dram_weighted += m.dramUtilPct * m.seconds;
        }
    }

    for (const auto& [layer, seconds] : layer_seconds)
        profile.byLayer.push_back({layer, seconds});
    std::sort(profile.byLayer.begin(), profile.byLayer.end(),
              [](const LayerAggregate& a, const LayerAggregate& b) {
                  return a.seconds > b.seconds;
              });

    double moe_total = 0.0;
    double moe_sm = 0.0;
    double moe_dram = 0.0;
    for (const auto& [name, agg] : moe_aggs) {
        KernelAggregate ka;
        ka.name = name;
        ka.seconds = agg.seconds;
        ka.launches = agg.launches;
        ka.flops = agg.flops;
        ka.bytes = agg.bytes;
        // Clamp: the time-weighted mean of values <= 100 can exceed 100
        // by floating-point round-off.
        ka.smUtilPct = agg.seconds > 0.0
                           ? std::min(agg.sm_weighted / agg.seconds, 100.0)
                           : 0.0;
        ka.dramUtilPct =
            agg.seconds > 0.0
                ? std::min(agg.dram_weighted / agg.seconds, 100.0)
                : 0.0;
        profile.moeKernels.push_back(std::move(ka));
        moe_total += agg.seconds;
        moe_sm += agg.sm_weighted;
        moe_dram += agg.dram_weighted;
    }
    std::sort(profile.moeKernels.begin(), profile.moeKernels.end(),
              [](const KernelAggregate& a, const KernelAggregate& b) {
                  return a.seconds > b.seconds;
              });
    if (moe_total > 0.0) {
        profile.moeTimeWeightedSmPct = moe_sm / moe_total;
        profile.moeTimeWeightedDramPct = moe_dram / moe_total;
    }

    profile.overheadSeconds = exec_.calibration().stepOverheadMs * 1e-3;
    profile.stepSeconds = profile.forwardSeconds +
                          profile.backwardSeconds +
                          profile.optimizerSeconds +
                          profile.overheadSeconds;
    profile.throughputQps =
        static_cast<double>(config.batchSize) / profile.stepSeconds;
    return profile;
}

std::vector<StepProfile>
FineTuneSim::profileSweep(const std::vector<RunConfig>& configs) const
{
    std::vector<StepProfile> out;
    out.reserve(configs.size());
    static thread_local SweepBuffers buf;
    std::vector<std::size_t> batches;
    std::vector<std::size_t> seqs;

    // Group consecutive configs that compile to the same plan (the
    // plan cache keys on shape only, so a whole 1..max run shares one
    // plan) and evaluate each group in a single vectorized pass.
    std::size_t lo = 0;
    while (lo < configs.size()) {
        const StepPlan& plan = builder_.stepPlan(configs[lo]);
        std::size_t hi = lo + 1;
        while (hi < configs.size() &&
               &builder_.stepPlan(configs[hi]) == &plan)
            ++hi;
        const std::size_t np = hi - lo;
        batches.resize(np);
        seqs.resize(np);
        for (std::size_t j = 0; j < np; ++j) {
            batches[j] = configs[lo + j].batchSize;
            seqs[j] = configs[lo + j].seqLen;
        }
        plan.evaluateSweep(batches.data(), seqs.data(), np, buf);
        for (std::size_t j = 0; j < np; ++j) {
            ++steps_simulated_;
            out.push_back(profileFromEval(
                plan, configs[lo + j], buf.flops.data() + j,
                buf.bytes.data() + j, buf.tiles.data() + j, np));
        }
        lo = hi;
    }
    return out;
}

double
FineTuneSim::stepSeconds(const RunConfig& config) const
{
    ++steps_simulated_;
    const StepPlan& plan = builder_.stepPlan(config);
    static thread_local EvaluatedStep eval;
    plan.evaluate(config.batchSize, config.seqLen, eval);
    double total = exec_.calibration().stepOverheadMs * 1e-3;
    const std::size_t n = plan.size();
    for (std::size_t i = 0; i < n; ++i)
        total += exec_
                     .simulate(plan.kinds[i], eval.flops[i],
                               eval.bytes[i], eval.tiles[i],
                               plan.efficiencies[i], plan.counts[i])
                     .seconds;
    return total;
}

double
FineTuneSim::stepSecondsReference(const RunConfig& config) const
{
    ++steps_simulated_;
    double total = exec_.calibration().stepOverheadMs * 1e-3;
    for (const KernelDesc& kd : builder_.buildStep(config))
        total += exec_.simulate(kd).seconds;
    return total;
}

std::size_t
FineTuneSim::paddedSeqLen(std::size_t seq_len, std::size_t batch,
                          double length_sigma) const
{
    const double factor = expectedBatchMaxFactor(batch, length_sigma);
    return static_cast<std::size_t>(
        std::lround(static_cast<double>(seq_len) * factor));
}

std::vector<RunConfig>
FineTuneSim::sweepConfigs(std::size_t median_seq_len,
                          double length_sigma) const
{
    std::vector<RunConfig> configs;
    for (bool sparse : {false, true}) {
        const int max_batch = MemoryModel::maxBatchSize(
            model_, exec_.gpu(), median_seq_len, sparse);
        for (int b = 1; b <= max_batch; ++b) {
            RunConfig config;
            config.batchSize = static_cast<std::size_t>(b);
            config.seqLen = paddedSeqLen(median_seq_len,
                                         static_cast<std::size_t>(b),
                                         length_sigma);
            config.sparse = sparse;
            configs.push_back(config);
        }
    }
    return configs;
}

double
FineTuneSim::throughput(std::size_t batch, std::size_t seq_len,
                        bool sparse, double length_sigma) const
{
    RunConfig config;
    config.batchSize = batch;
    config.seqLen = paddedSeqLen(seq_len, batch, length_sigma);
    config.sparse = sparse;
    return static_cast<double>(batch) / stepSeconds(config);
}

Result<std::vector<ThroughputPoint>>
FineTuneSim::throughputSweep(std::size_t seq_len, bool sparse,
                             std::size_t max_batch, double length_sigma,
                             unsigned threads) const
{
    if (max_batch == 0)
        return Error{ErrorCode::InvalidArgument,
                     "FineTuneSim::throughputSweep: zero max batch"};
    // One vectorized pass over the compiled plan replaces the old
    // per-batch fan-out; the results were always thread-count
    // independent and stay bit-identical to a per-batch stepSeconds
    // loop (evaluateSweep + accumulateSweepSeconds both preserve the
    // scalar evaluation order).
    (void)threads;

    RunConfig shape;
    shape.sparse = sparse;
    const StepPlan& plan = builder_.stepPlan(shape);

    std::vector<std::size_t> batches(max_batch);
    std::vector<std::size_t> seqs(max_batch);
    for (std::size_t i = 0; i < max_batch; ++i) {
        batches[i] = i + 1;
        seqs[i] = paddedSeqLen(seq_len, i + 1, length_sigma);
    }
    static thread_local SweepBuffers buf;
    plan.evaluateSweep(batches.data(), seqs.data(), max_batch, buf);

    std::vector<double> totals(
        max_batch, exec_.calibration().stepOverheadMs * 1e-3);
    exec_.accumulateSweepSeconds(
        plan.kinds.data(), plan.efficiencies.data(), plan.counts.data(),
        plan.size(), buf.flops.data(), buf.bytes.data(),
        buf.tiles.data(), max_batch, totals.data());
    steps_simulated_ += max_batch;

    std::vector<ThroughputPoint> points(max_batch);
    for (std::size_t i = 0; i < max_batch; ++i) {
        points[i].batchSize = i + 1;
        points[i].stepSeconds = totals[i];
        points[i].qps = static_cast<double>(i + 1) / totals[i];
    }
    return points;
}

}  // namespace ftsim
