#ifndef FTSIM_GPUSIM_REGISTRY_SNAPSHOT_HPP
#define FTSIM_GPUSIM_REGISTRY_SNAPSHOT_HPP

/**
 * @file
 * Versioned binary snapshots of a `PlanRegistry` — compiled state that
 * ships between processes instead of being recompiled.
 *
 * A fleet shard that has served traffic holds a registry full of
 * compiled `StepPlan`s. `saveRegistrySnapshot` serializes every
 * completed entry — key, SoA kernel arrays, per-kernel formulas — into
 * one self-describing byte string; `loadRegistrySnapshot` rebuilds the
 * plans inside another registry, re-interning kernel names into the
 * *target* interner (name ids are interner-local and never serialized),
 * re-deriving the aggregation tables via `StepPlan::finalize`, and
 * skipping keys the target already has (a live compile always wins).
 * A warm-started shard therefore compiles zero plans for every config
 * the donor had seen — the `stepPlan` path finds them in the registry.
 *
 * Wire format (little-endian, fixed-width):
 *
 *     "FTSNAP"  u32 version   u64 payloadBytes   u64 fnv1a(payload)
 *     payload := u32 planCount, then per plan:
 *         str key, f64 activeExperts, f64 nExperts, u32 kernelCount,
 *         then per kernel: str name, u8 kind, u8 layer, u8 stage,
 *         f64 count, f64 efficiency, u8 eval, u8 rows, f64 a..e
 *     str := u32 length + bytes
 *
 * Hostile-input contract: snapshot bytes arrive over the wire (the
 * `snapshot` protocol query) or from disk (`--warm-from`), so the
 * loader trusts nothing — every read is bounds-checked, the checksum
 * and declared payload length must match, enum bytes must be in range,
 * and any violation is a typed `InvalidArgument`, never UB (the
 * truncation/corruption tests in tests/gpusim/test_registry_snapshot
 * .cpp sweep this). Doubles round-trip by bit pattern, so a loaded
 * plan evaluates bit-identically to its donor.
 */

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "gpusim/plan_registry.hpp"

namespace ftsim {

/** What loadRegistrySnapshot did. */
struct SnapshotLoadInfo {
    /** Plans adopted into the target registry. */
    std::uint64_t plansLoaded = 0;
    /** Snapshot entries skipped because the key already existed. */
    std::uint64_t plansSkipped = 0;
};

/** Serializes every completed plan in @p registry (see file comment). */
std::string saveRegistrySnapshot(const PlanRegistry& registry);

/**
 * Rebuilds @p snapshot's plans inside @p registry. All-or-nothing per
 * call: the snapshot is fully validated (checksum, lengths, enum
 * domains) before the first plan is inserted, so a malformed blob
 * leaves the registry untouched.
 */
Result<SnapshotLoadInfo> loadRegistrySnapshot(PlanRegistry& registry,
                                              std::string_view snapshot);

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_REGISTRY_SNAPSHOT_HPP
