#ifndef FTSIM_GPUSIM_WORKLOAD_HPP
#define FTSIM_GPUSIM_WORKLOAD_HPP

/**
 * @file
 * Lowers a full-size ModelSpec + run configuration into the kernel
 * sequence of one fine-tuning step.
 *
 * The emitted kernels follow the paper's own naming (Figs. 6, 9, 10):
 * matmul(w1/w2/w3/router), w*_dequant, softmax, topk, gelu, sigmoid,
 * elementwise_mult, plus the attention / mamba / norm / optimizer
 * kernels that the stage- and layer-level breakdowns (Figs. 4-5)
 * aggregate over. Identical per-layer (and per-expert) launches are
 * collapsed via KernelDesc::count, so a 32-layer, 8-expert step stays a
 * compact descriptor list while launch-overhead accounting remains
 * correct.
 */

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/interner.hpp"
#include "gpusim/kernel.hpp"
#include "gpusim/plan_registry.hpp"
#include "gpusim/step_plan.hpp"
#include "models/spec.hpp"

namespace ftsim {

/** One fine-tuning step configuration. */
struct RunConfig {
    std::size_t batchSize = 1;
    std::size_t seqLen = 128;   ///< The paper's profiling length (§III).
    bool sparse = true;         ///< top-2 experts vs. all 8.
    /**
     * Re-run the forward pass inside backward (gradient checkpointing).
     * Defaults to the paper's setup: on for QLoRA Mixtral, off for
     * BlackMamba. Set explicitly for ablations.
     */
    int gradientCheckpointing = -1;  ///< -1 = strategy default.
};

/**
 * Builds kernel workloads from a model spec.
 *
 * Two emission paths produce identical numbers:
 *
 *  - `buildStep` / `buildForward` — the retained *reference* path,
 *    materializing a fresh `std::vector<KernelDesc>` per call. It is
 *    the golden oracle for tests and the pre-optimization baseline the
 *    perf bench compares against.
 *  - `stepPlan` — the compiled path: one `StepPlan` per config shape
 *    (sparse x checkpointing), cached for the builder's lifetime, with
 *    interned kernel names and per-kernel formulas evaluated per
 *    (batch, seq). This is what the simulation hot path uses.
 *
 * Any change to one path must be mirrored in the other; the golden
 * tests in tests/gpusim/test_step_plan.cpp enforce bit-equality.
 */
class WorkloadBuilder {
  public:
    /**
     * @param registry optional fleet-wide plan cache: when set, kernel
     *        names intern into the registry's interner and `stepPlan`
     *        looks shapes up there before compiling, so builders for
     *        the same model (different GPUs, different planners) share
     *        one compiled plan per shape.
     */
    explicit WorkloadBuilder(const ModelSpec& spec,
                             std::shared_ptr<PlanRegistry> registry =
                                 nullptr);

    // Plan slots hold std::once_flag: no copies.
    WorkloadBuilder(const WorkloadBuilder&) = delete;
    WorkloadBuilder& operator=(const WorkloadBuilder&) = delete;

    /** Kernels of a full step: forward + backward + optimizer. */
    std::vector<KernelDesc> buildStep(const RunConfig& config) const;

    /** Kernels of the forward pass only. */
    std::vector<KernelDesc> buildForward(const RunConfig& config) const;

    /**
     * The compiled plan for @p config's shape. Compiled on first use
     * and cached; batch size and sequence length do not participate in
     * the cache key (they are `StepPlan::evaluate` inputs). Thread-safe.
     */
    const StepPlan& stepPlan(const RunConfig& config) const;

    /** The interner backing the plans' kernel-name ids (the attached
     *  registry's interner when one is set, else builder-local). */
    const StringInterner& kernelNames() const { return interner(); }

    /** Plans *this builder* compiled (at most 4; tests pin the reuse).
     *  Shapes answered by the attached registry do not count. */
    std::uint32_t plansCompiled() const { return plans_compiled_.load(); }

    /** The attached fleet-wide plan registry (may be null). */
    const std::shared_ptr<PlanRegistry>& planRegistry() const
    {
        return registry_;
    }

    /** The spec being lowered. */
    const ModelSpec& spec() const { return spec_; }

    /** Whether checkpointing applies under @p config. */
    bool checkpointing(const RunConfig& config) const;

    /** ALU ops charged per element de-quantized (NF4-style unpack:
     *  nibble shifts, LUT gather, per-block scale multiply). */
    static constexpr double kDequantOpsPerElement = 20.0;

  private:
    /** Appends the forward kernels of one decoder layer. */
    void addLayerForward(std::vector<KernelDesc>& out,
                         const RunConfig& config, Stage stage) const;

    /** Appends backward-only kernels (dX/dW chains) of one layer. */
    void addLayerBackward(std::vector<KernelDesc>& out,
                          const RunConfig& config) const;

    /** Appends embedding + LM-head kernels for a stage. */
    void addHead(std::vector<KernelDesc>& out, const RunConfig& config,
                 Stage stage) const;

    /** Appends the optimizer-stage kernels. */
    void addOptimizer(std::vector<KernelDesc>& out) const;

    // -- emission helpers ------------------------------------------------

    /** Emits a GEMM of shape [m, k] x [k, n] (+ optional weight read). */
    KernelDesc gemm(const char* name, Stage stage, LayerClass layer,
                    double m, double k, double n, double weight_bytes,
                    double count) const;

    /** Emits a 4-bit dequant kernel over a [k, n] weight. */
    KernelDesc dequant(const char* name, Stage stage, LayerClass layer,
                       double elements, double count) const;

    /** Emits a rowwise kernel (softmax/topk/norm/...). */
    KernelDesc rowwise(const char* name, KernelKind kind, Stage stage,
                       LayerClass layer, double rows, double width,
                       double ops_per_element, double count) const;

    // -- compiled-plan path ----------------------------------------------

    /** Compiles the plan for one shape; mirrors the reference path. */
    StepPlan compilePlan(bool sparse, bool checkpointing) const;

    /** Mirrors addLayerForward (names get " (recompute)" suffixed). */
    void compileLayerForward(StepPlan& plan, Stage stage,
                             bool recompute) const;

    /** Mirrors addLayerBackward. */
    void compileLayerBackward(StepPlan& plan) const;

    /** Mirrors addHead. */
    void compileHead(StepPlan& plan, Stage stage) const;

    /** Mirrors addOptimizer. */
    void compileOptimizer(StepPlan& plan) const;

    /** The interner in use: the registry's when attached, else ours. */
    StringInterner& interner() const
    {
        return registry_ ? registry_->names() : names_;
    }

    ModelSpec spec_;
    std::shared_ptr<PlanRegistry> registry_;

    /** One lazily-resolved plan per (sparse, checkpointing) shape; the
     *  pointee is owned here or shared out of the registry. */
    struct PlanSlot {
        std::once_flag once;
        std::shared_ptr<const StepPlan> plan;
    };
    mutable std::array<PlanSlot, 4> plans_;
    mutable StringInterner names_;
    mutable std::atomic<std::uint32_t> plans_compiled_{0};
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_WORKLOAD_HPP
