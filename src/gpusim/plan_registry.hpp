#ifndef FTSIM_GPUSIM_PLAN_REGISTRY_HPP
#define FTSIM_GPUSIM_PLAN_REGISTRY_HPP

/**
 * @file
 * Fleet-wide sharing of compiled step plans.
 *
 * A `StepPlan` is immutable after `finalize()` and depends only on the
 * (model, config shape) pair — not on the GPU, the dataset, or the
 * planner that asked for it. A single `WorkloadBuilder` already reuses
 * its own plans across batch sizes, but a serving fleet creates one
 * builder per (scenario, GPU) simulator, and without sharing every one
 * of them recompiles the identical kernel graph.
 *
 * `PlanRegistry` is the cross-builder cache: builders constructed with
 * a shared registry intern their kernel names into the registry's
 * interner and look plans up by (model fingerprint, shape) before
 * compiling. Entries have the same shared-future once-semantics as the
 * planner's step cache — one compiler per key, concurrent requesters
 * wait, compilation runs outside the registry lock — so a service
 * spinning up N planners on one model compiles each shape exactly once
 * fleet-wide (`plansCompiled()` / `planHits()` instrument the claim).
 *
 * Thread-safety: all members are safe to call concurrently. Returned
 * plan pointers are shared and immutable; they outlive the registry if
 * callers retain them.
 */

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/interner.hpp"
#include "gpusim/step_plan.hpp"

namespace ftsim {

/** Cross-builder cache of compiled step plans (see file comment). */
class PlanRegistry {
  public:
    PlanRegistry() = default;
    PlanRegistry(const PlanRegistry&) = delete;
    PlanRegistry& operator=(const PlanRegistry&) = delete;

    /**
     * The shared kernel-name interner. Every builder attached to this
     * registry must intern through it so plan name ids resolve
     * identically across the fleet.
     */
    StringInterner& names() { return names_; }
    const StringInterner& names() const { return names_; }

    /**
     * The plan for @p key, compiling it via @p compile on first sight.
     * Exactly one caller runs @p compile per key (outside the registry
     * lock); concurrent requesters for the same key block on its shared
     * future. @p compile must intern names through names().
     */
    std::shared_ptr<const StepPlan> plan(
        const std::string& key,
        const std::function<StepPlan()>& compile);

    /**
     * Inserts an already-compiled plan (a snapshot entry) under @p key.
     * Returns false — and changes nothing — when the key already has an
     * entry: a live compile always wins over a warm-start, so loading a
     * snapshot over a busy registry is safe at any time. Counted under
     * plansLoaded(), never plansCompiled().
     */
    bool insertLoaded(const std::string& key,
                      std::shared_ptr<const StepPlan> plan);

    /**
     * Visits every *completed* entry as (key, plan) — entries whose
     * compile is still running are skipped (a snapshot wants plans, not
     * blocking). Ordered by key, so snapshot bytes are deterministic.
     */
    void forEachReadyPlan(
        const std::function<void(const std::string&,
                                 const std::shared_ptr<const StepPlan>&)>&
            visit) const;

    /** Distinct keys compiled so far (loads excluded). */
    std::uint64_t plansCompiled() const { return compiled_.load(); }

    /** Entries adopted from snapshots via insertLoaded(). */
    std::uint64_t plansLoaded() const { return loaded_.load(); }

    /** Lookups answered by an existing (or in-flight) entry. */
    std::uint64_t planHits() const { return hits_.load(); }

  private:
    StringInterner names_;
    mutable std::mutex mutex_;
    std::map<std::string,
             std::shared_future<std::shared_ptr<const StepPlan>>>
        plans_;
    std::atomic<std::uint64_t> compiled_{0};
    std::atomic<std::uint64_t> loaded_{0};
    std::atomic<std::uint64_t> hits_{0};
};

}  // namespace ftsim

#endif  // FTSIM_GPUSIM_PLAN_REGISTRY_HPP
