#include "common/math_util.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace ftsim {

namespace {

std::string
withUnit(double value, const char* unit, int precision = 2)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value << ' '
        << unit;
    return oss.str();
}

}  // namespace

std::string
formatBytes(double bytes)
{
    if (bytes >= kGiB)
        return withUnit(bytes / kGiB, "GiB");
    if (bytes >= kMiB)
        return withUnit(bytes / kMiB, "MiB");
    if (bytes >= 1024.0)
        return withUnit(bytes / 1024.0, "KiB");
    return withUnit(bytes, "B", 0);
}

std::string
formatSeconds(double seconds)
{
    if (seconds >= 1.0)
        return withUnit(seconds, "s", 3);
    if (seconds >= 1e-3)
        return withUnit(seconds * 1e3, "ms", 3);
    if (seconds >= 1e-6)
        return withUnit(seconds * 1e6, "us", 1);
    return withUnit(seconds * 1e9, "ns", 0);
}

std::string
formatCount(double count)
{
    if (count >= 1e12)
        return withUnit(count / 1e12, "T", 1);
    if (count >= 1e9)
        return withUnit(count / 1e9, "B", 1);
    if (count >= 1e6)
        return withUnit(count / 1e6, "M", 1);
    if (count >= 1e3)
        return withUnit(count / 1e3, "K", 1);
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(0) << count;
    return oss.str();
}

double
normalQuantile(double p)
{
    if (p <= 0.0 || p >= 1.0)
        fatal(strCat("normalQuantile: p out of (0, 1): ", p));
    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};
    const double p_low = 0.02425;
    double q, r;
    if (p < p_low) {
        q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                    q + c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= 1.0 - p_low) {
        q = p - 0.5;
        r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) *
                    r + a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) *
                    r + 1.0);
    }
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) *
                 q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double
expectedBatchMaxFactor(std::size_t batch, double sigma)
{
    if (batch == 0)
        fatal("expectedBatchMaxFactor: zero batch");
    if (sigma < 0.0)
        fatal("expectedBatchMaxFactor: negative sigma");
    if (sigma == 0.0 || batch == 1)
        return 1.0;
    // Blom's plotting position for the largest of n order statistics.
    const double n = static_cast<double>(batch);
    const double z = normalQuantile((n - 0.375) / (n + 0.25));
    return std::exp(sigma * z);
}

}  // namespace ftsim
