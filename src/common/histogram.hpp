#ifndef FTSIM_COMMON_HISTOGRAM_HPP
#define FTSIM_COMMON_HISTOGRAM_HPP

/**
 * @file
 * Fixed-bin histogram with an ASCII renderer.
 *
 * Used to regenerate Fig. 2 (sequence-length distributions of the CS and
 * MATH datasets) and for ad-hoc inspection of simulator counters.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace ftsim {

/** Fixed-width-bin histogram over [lo, hi). */
class Histogram {
  public:
    /**
     * Creates a histogram with @p num_bins equal bins spanning [lo, hi).
     * Out-of-range samples are clamped into the first/last bin and
     * counted separately as underflow/overflow.
     */
    Histogram(double lo, double hi, std::size_t num_bins);

    /** Adds one sample. */
    void add(double x);

    /** Adds every sample of a vector. */
    void addAll(const std::vector<double>& xs);

    /** Total number of samples added (including clamped ones). */
    std::size_t count() const { return count_; }

    /** Number of samples that fell below the range. */
    std::size_t underflow() const { return underflow_; }

    /** Number of samples that fell above the range. */
    std::size_t overflow() const { return overflow_; }

    /** Number of bins. */
    std::size_t numBins() const { return counts_.size(); }

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const;

    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;

    /** Exclusive upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Index of the fullest bin (0 if empty). */
    std::size_t modeBin() const;

    /**
     * Estimated value at quantile @p q in [0, 1], linearly interpolated
     * inside the bin that crosses the target rank (the standard
     * histogram-quantile estimate; resolution is one bin width).
     * Serving-latency p50/p99 read this. Returns 0 on an empty
     * histogram; fatal on q outside [0, 1].
     */
    double quantile(double q) const;

    /**
     * Renders the histogram as rows of `[lo, hi) count |#####`.
     * @param width maximum number of '#' characters for the fullest bin.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<std::size_t> counts_;
    std::size_t count_ = 0;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_HISTOGRAM_HPP
