#ifndef FTSIM_COMMON_HISTOGRAM_HPP
#define FTSIM_COMMON_HISTOGRAM_HPP

/**
 * @file
 * Fixed-bin histogram with an ASCII renderer.
 *
 * Used to regenerate Fig. 2 (sequence-length distributions of the CS and
 * MATH datasets), for ad-hoc inspection of simulator counters, and as the
 * histogram value type of `common/stats_registry`.
 *
 * Concurrency contract: `add()` is lock-free (relaxed atomic increments)
 * and may race freely with every read accessor — `count()`, `binCount()`,
 * `quantile()`, `render()` never observe torn values. Reads are
 * individually atomic but NOT mutually consistent: a `quantile()` taken
 * mid-publish may lag concurrent `add()`s by the handful of samples still
 * in flight. `add()` publishes the bin before the total, so `count()` is
 * never ahead of the bins a concurrent `quantile()` walks — the estimate
 * always lands inside the populated range. Copy/assignment/`merge()` read
 * the source atomically under the same transient-skew caveat; they are
 * not atomic with respect to writes on the *destination*.
 */

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ftsim {

/** Fixed-width-bin histogram over [lo, hi). */
class Histogram {
  public:
    /**
     * Creates a histogram with @p num_bins equal bins spanning [lo, hi).
     * Out-of-range samples are clamped into the first/last bin and
     * counted separately as underflow/overflow.
     */
    Histogram(double lo, double hi, std::size_t num_bins);

    /** Snapshot copy; sees the source per-bin atomically (see @file). */
    Histogram(const Histogram& other);
    Histogram& operator=(const Histogram& other);

    /** Adds one sample. Lock-free; safe to race with reads. */
    void add(double x);

    /** Adds every sample of a vector. */
    void addAll(const std::vector<double>& xs);

    /**
     * Adds every bucket of @p other into this histogram. The two must
     * share [lo, hi) and the bin count (fatal otherwise) — merging
     * rebuckets nothing, it just sums counts.
     */
    void merge(const Histogram& other);

    /** Total number of samples added (including clamped ones). */
    std::size_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Number of samples that fell below the range. */
    std::size_t underflow() const
    {
        return underflow_.load(std::memory_order_relaxed);
    }

    /** Number of samples that fell above the range. */
    std::size_t overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }

    /** Number of bins. */
    std::size_t numBins() const { return counts_.size(); }

    /** Count in bin @p i. */
    std::size_t binCount(std::size_t i) const;

    /** Inclusive lower edge of bin @p i. */
    double binLo(std::size_t i) const;

    /** Exclusive upper edge of bin @p i. */
    double binHi(std::size_t i) const;

    /** Center of bin @p i. */
    double binCenter(std::size_t i) const;

    /** Inclusive lower edge of the whole range. */
    double lo() const { return lo_; }

    /** Exclusive upper edge of the whole range. */
    double hi() const { return hi_; }

    /** Index of the fullest bin (0 if empty). */
    std::size_t modeBin() const;

    /**
     * Estimated value at quantile @p q in [0, 1], linearly interpolated
     * inside the bin that crosses the target rank (the standard
     * histogram-quantile estimate; resolution is one bin width).
     * Serving-latency p50/p99 read this. Returns 0 on an empty
     * histogram; fatal on q outside [0, 1]. Safe to call concurrently
     * with `add()` (see the @file contract).
     */
    double quantile(double q) const;

    /**
     * Renders the histogram as rows of `[lo, hi) count |#####`.
     * @param width maximum number of '#' characters for the fullest bin.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double lo_;
    double hi_;
    double binWidth_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_HISTOGRAM_HPP
