#include "common/base64.hpp"

#include <array>
#include <cstdint>

namespace ftsim {

namespace {

constexpr char kAlphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/** 0..63 for alphabet bytes, -1 otherwise ('=' included). */
std::array<std::int8_t, 256>
buildReverse()
{
    std::array<std::int8_t, 256> table{};
    table.fill(-1);
    for (int i = 0; i < 64; ++i)
        table[static_cast<unsigned char>(kAlphabet[i])] =
            static_cast<std::int8_t>(i);
    return table;
}

const std::array<std::int8_t, 256> kReverse = buildReverse();

}  // namespace

std::string
base64Encode(std::string_view bytes)
{
    std::string out;
    out.reserve((bytes.size() + 2) / 3 * 4);
    std::size_t i = 0;
    for (; i + 3 <= bytes.size(); i += 3) {
        const std::uint32_t group =
            (static_cast<unsigned char>(bytes[i]) << 16) |
            (static_cast<unsigned char>(bytes[i + 1]) << 8) |
            static_cast<unsigned char>(bytes[i + 2]);
        out += kAlphabet[(group >> 18) & 0x3F];
        out += kAlphabet[(group >> 12) & 0x3F];
        out += kAlphabet[(group >> 6) & 0x3F];
        out += kAlphabet[group & 0x3F];
    }
    const std::size_t rest = bytes.size() - i;
    if (rest == 1) {
        const std::uint32_t group =
            static_cast<unsigned char>(bytes[i]) << 16;
        out += kAlphabet[(group >> 18) & 0x3F];
        out += kAlphabet[(group >> 12) & 0x3F];
        out += "==";
    } else if (rest == 2) {
        const std::uint32_t group =
            (static_cast<unsigned char>(bytes[i]) << 16) |
            (static_cast<unsigned char>(bytes[i + 1]) << 8);
        out += kAlphabet[(group >> 18) & 0x3F];
        out += kAlphabet[(group >> 12) & 0x3F];
        out += kAlphabet[(group >> 6) & 0x3F];
        out += '=';
    }
    return out;
}

Result<std::string>
base64Decode(std::string_view text)
{
    if (text.size() % 4 != 0)
        return Error{ErrorCode::InvalidArgument,
                     "base64 length must be a multiple of 4"};
    std::string out;
    out.reserve(text.size() / 4 * 3);
    for (std::size_t i = 0; i < text.size(); i += 4) {
        const bool last = i + 4 == text.size();
        int pad = 0;
        std::uint32_t group = 0;
        for (int j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                // Padding is only legal as the last one or two
                // characters of the whole string.
                if (!last || j < 2)
                    return Error{ErrorCode::InvalidArgument,
                                 "misplaced '=' padding"};
                ++pad;
                group <<= 6;
                continue;
            }
            if (pad > 0)
                return Error{ErrorCode::InvalidArgument,
                             "data after '=' padding"};
            const std::int8_t v =
                kReverse[static_cast<unsigned char>(c)];
            if (v < 0)
                return Error{ErrorCode::InvalidArgument,
                             "invalid base64 character"};
            group = (group << 6) | static_cast<std::uint32_t>(v);
        }
        out += static_cast<char>((group >> 16) & 0xFF);
        if (pad < 2)
            out += static_cast<char>((group >> 8) & 0xFF);
        if (pad < 1)
            out += static_cast<char>(group & 0xFF);
    }
    return out;
}

}  // namespace ftsim
