#include "common/result.hpp"

namespace ftsim {

const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::UnknownGpu:
        return "UnknownGpu";
      case ErrorCode::DoesNotFit:
        return "DoesNotFit";
      case ErrorCode::EmptySweep:
        return "EmptySweep";
      case ErrorCode::InvalidArgument:
        return "InvalidArgument";
      case ErrorCode::NoViablePlan:
        return "NoViablePlan";
      case ErrorCode::RateLimited:
        return "RateLimited";
      case ErrorCode::Unavailable:
        return "Unavailable";
    }
    return "UnknownError";
}

}  // namespace ftsim
