#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace ftsim {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("Table: need at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal(strCat("Table::addRow: expected ", headers_.size(),
                     " cells, got ", cells.size()));
    }
    rows_.push_back(std::move(cells));
}

const std::string&
Table::cell(std::size_t row, std::size_t col) const
{
    if (row >= rows_.size() || col >= headers_.size())
        fatal("Table::cell: index out of range");
    return rows_[row][col];
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            oss << std::left << std::setw(static_cast<int>(widths[c]))
                << row[c];
            if (c + 1 < row.size())
                oss << "  ";
        }
        oss << '\n';
    };
    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    oss << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::toCsv() const
{
    auto escape = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += "\"\"";
            else
                out += ch;
        }
        out += '"';
        return out;
    };
    std::ostringstream oss;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        oss << (c ? "," : "") << escape(headers_[c]);
    oss << '\n';
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            oss << (c ? "," : "") << escape(row[c]);
        oss << '\n';
    }
    return oss.str();
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
Table::fmt(long long value)
{
    return std::to_string(value);
}

std::string
renderBarChart(const std::vector<std::pair<std::string, double>>& bars,
               std::size_t width, const std::string& unit)
{
    double peak = 0.0;
    std::size_t label_width = 0;
    for (const auto& [label, value] : bars) {
        peak = std::max(peak, value);
        label_width = std::max(label_width, label.size());
    }
    std::ostringstream oss;
    for (const auto& [label, value] : bars) {
        std::size_t bar = 0;
        if (peak > 0.0 && value > 0.0) {
            bar = static_cast<std::size_t>(
                value / peak * static_cast<double>(width) + 0.5);
            bar = std::max<std::size_t>(bar, 1);
        }
        oss << std::left << std::setw(static_cast<int>(label_width))
            << label << "  " << std::right << std::setw(12) << std::fixed
            << std::setprecision(4) << value;
        if (!unit.empty())
            oss << ' ' << unit;
        oss << "  |" << std::string(bar, '#') << '\n';
    }
    return oss.str();
}

}  // namespace ftsim
