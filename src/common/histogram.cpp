#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace ftsim {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi)
{
    if (!(lo < hi))
        fatal("Histogram: lo must be < hi");
    if (num_bins == 0)
        fatal("Histogram: need at least one bin");
    binWidth_ = (hi - lo) / static_cast<double>(num_bins);
    counts_.assign(num_bins, 0);
}

void
Histogram::add(double x)
{
    ++count_;
    std::size_t idx;
    if (x < lo_) {
        ++underflow_;
        idx = 0;
    } else if (x >= hi_) {
        ++overflow_;
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((x - lo_) / binWidth_);
        idx = std::min(idx, counts_.size() - 1);
    }
    ++counts_[idx];
}

void
Histogram::addAll(const std::vector<double>& xs)
{
    for (double x : xs)
        add(x);
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::binCount: index out of range");
    return counts_[i];
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i + 1);
}

double
Histogram::binCenter(std::size_t i) const
{
    return 0.5 * (binLo(i) + binHi(i));
}

std::size_t
Histogram::modeBin() const
{
    return static_cast<std::size_t>(
        std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

double
Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        fatal("Histogram::quantile: q must be in [0, 1]");
    if (count_ == 0)
        return 0.0;
    const double target = q * static_cast<double>(count_);
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double c = static_cast<double>(counts_[i]);
        if (seen + c >= target && c > 0.0) {
            // Interpolate the rank's position inside this bin.
            const double frac =
                std::min(1.0, std::max(0.0, (target - seen) / c));
            return binLo(i) + frac * binWidth_;
        }
        seen += c;
    }
    return binHi(counts_.size() - 1);
}

std::string
Histogram::render(std::size_t width) const
{
    std::size_t peak = counts_.empty() ? 0 : counts_[modeBin()];
    std::ostringstream oss;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        std::size_t bar =
            peak ? (counts_[i] * width + peak - 1) / peak : 0;
        oss << '[' << std::setw(7) << std::fixed << std::setprecision(1)
            << binLo(i) << ", " << std::setw(7) << binHi(i) << ") "
            << std::setw(7) << counts_[i] << " |"
            << std::string(bar, '#') << '\n';
    }
    return oss.str();
}

}  // namespace ftsim
