#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace ftsim {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi)
{
    if (!(lo < hi))
        fatal("Histogram: lo must be < hi");
    if (num_bins == 0)
        fatal("Histogram: need at least one bin");
    binWidth_ = (hi - lo) / static_cast<double>(num_bins);
    // Value-initialization zeroes the atomics.
    counts_ = std::vector<std::atomic<std::uint64_t>>(num_bins);
}

Histogram::Histogram(const Histogram& other)
    : lo_(other.lo_), hi_(other.hi_), binWidth_(other.binWidth_),
      counts_(other.counts_.size())
{
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    underflow_.store(other.underflow_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    overflow_.store(other.overflow_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
}

Histogram&
Histogram::operator=(const Histogram& other)
{
    if (this == &other)
        return *this;
    lo_ = other.lo_;
    hi_ = other.hi_;
    binWidth_ = other.binWidth_;
    if (counts_.size() != other.counts_.size())
        counts_ = std::vector<std::atomic<std::uint64_t>>(
            other.counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    underflow_.store(other.underflow_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    overflow_.store(other.overflow_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
}

void
Histogram::add(double x)
{
    std::size_t idx;
    if (x < lo_) {
        underflow_.fetch_add(1, std::memory_order_relaxed);
        idx = 0;
    } else if (x >= hi_) {
        overflow_.fetch_add(1, std::memory_order_relaxed);
        idx = counts_.size() - 1;
    } else {
        idx = static_cast<std::size_t>((x - lo_) / binWidth_);
        idx = std::min(idx, counts_.size() - 1);
    }
    // Bin before total: a concurrent quantile() that sees the new total
    // must also see a bin population covering it (release/acquire pair).
    counts_[idx].fetch_add(1, std::memory_order_release);
    count_.fetch_add(1, std::memory_order_release);
}

void
Histogram::addAll(const std::vector<double>& xs)
{
    for (double x : xs)
        add(x);
}

void
Histogram::merge(const Histogram& other)
{
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size())
        fatal("Histogram::merge: shape mismatch (lo/hi/bins must agree)");
    for (std::size_t i = 0; i < counts_.size(); ++i)
        counts_[i].fetch_add(
            other.counts_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    underflow_.fetch_add(other.underflow_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    overflow_.fetch_add(other.overflow_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
}

std::size_t
Histogram::binCount(std::size_t i) const
{
    if (i >= counts_.size())
        panic("Histogram::binCount: index out of range");
    return counts_[i].load(std::memory_order_relaxed);
}

double
Histogram::binLo(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i);
}

double
Histogram::binHi(std::size_t i) const
{
    return lo_ + binWidth_ * static_cast<double>(i + 1);
}

double
Histogram::binCenter(std::size_t i) const
{
    return 0.5 * (binLo(i) + binHi(i));
}

std::size_t
Histogram::modeBin() const
{
    std::size_t best = 0;
    std::uint64_t peak = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
        if (c > peak) {
            peak = c;
            best = i;
        }
    }
    return best;
}

double
Histogram::quantile(double q) const
{
    if (q < 0.0 || q > 1.0)
        fatal("Histogram::quantile: q must be in [0, 1]");
    // Acquire pairs with add()'s bin-then-total release ordering: every
    // sample inside this total is already visible in some bin below.
    const std::uint64_t total = count_.load(std::memory_order_acquire);
    if (total == 0)
        return 0.0;
    const double target = q * static_cast<double>(total);
    double seen = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const double c = static_cast<double>(
            counts_[i].load(std::memory_order_acquire));
        if (seen + c >= target && c > 0.0) {
            // Interpolate the rank's position inside this bin.
            const double frac =
                std::min(1.0, std::max(0.0, (target - seen) / c));
            return binLo(i) + frac * binWidth_;
        }
        seen += c;
    }
    return binHi(counts_.size() - 1);
}

std::string
Histogram::render(std::size_t width) const
{
    std::uint64_t peak =
        counts_.empty() ? 0 : binCount(modeBin());
    std::ostringstream oss;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const std::uint64_t c = counts_[i].load(std::memory_order_relaxed);
        std::size_t bar =
            peak ? static_cast<std::size_t>((c * width + peak - 1) / peak)
                 : 0;
        oss << '[' << std::setw(7) << std::fixed << std::setprecision(1)
            << binLo(i) << ", " << std::setw(7) << binHi(i) << ") "
            << std::setw(7) << c << " |" << std::string(bar, '#') << '\n';
    }
    return oss.str();
}

}  // namespace ftsim
