#ifndef FTSIM_COMMON_BASE64_HPP
#define FTSIM_COMMON_BASE64_HPP

/**
 * @file
 * Standard base64 (RFC 4648, '=' padded) for binary payloads on the
 * JSON-lines wire — the `snapshot` protocol query ships a binary
 * `PlanRegistry` snapshot inside a JSON string field, and JSON strings
 * cannot carry raw bytes.
 *
 * Hand-rolled like the rest of the wire layer (common/table spirit):
 * dependency-free, strict on decode — non-alphabet characters,
 * misplaced padding, and truncated groups are errors, not guesses,
 * because decoded snapshots feed a length-checked binary parser that
 * deserves well-formed input or a typed failure.
 */

#include <string>
#include <string_view>

#include "common/result.hpp"

namespace ftsim {

/** Encodes @p bytes as padded base64. */
std::string base64Encode(std::string_view bytes);

/** Decodes padded base64; `InvalidArgument` on any malformed input
 *  (bad character, bad padding, truncated final group). */
Result<std::string> base64Decode(std::string_view text);

}  // namespace ftsim

#endif  // FTSIM_COMMON_BASE64_HPP
