#ifndef FTSIM_COMMON_TABLE_HPP
#define FTSIM_COMMON_TABLE_HPP

/**
 * @file
 * Aligned ASCII table and CSV writers.
 *
 * Every benchmark binary regenerates one of the paper's tables or figure
 * data series; Table gives them a uniform, diff-friendly output format.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace ftsim {

/** Column-aligned text table with optional CSV serialization. */
class Table {
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends a pre-stringified row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows. */
    std::size_t numRows() const { return rows_.size(); }

    /** Number of columns. */
    std::size_t numCols() const { return headers_.size(); }

    /** Cell accessor (row-major); fatal on out-of-range. */
    const std::string& cell(std::size_t row, std::size_t col) const;

    /** Renders the table with aligned columns and a header rule. */
    std::string render() const;

    /** Renders the table as RFC-4180-ish CSV (quotes cells with commas). */
    std::string toCsv() const;

    /** Formats a double with fixed @p precision — row-building helper. */
    static std::string fmt(double value, int precision = 2);

    /** Formats an integer — row-building helper. */
    static std::string fmt(long long value);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Renders a labelled horizontal bar chart of (label, value) pairs — the
 * text analogue of the paper's bar figures (Figs. 4-6, 8-10).
 * @param width number of characters for the largest bar.
 */
std::string renderBarChart(
    const std::vector<std::pair<std::string, double>>& bars,
    std::size_t width = 50, const std::string& unit = "");

}  // namespace ftsim

#endif  // FTSIM_COMMON_TABLE_HPP
