#ifndef FTSIM_COMMON_STATS_REGISTRY_HPP
#define FTSIM_COMMON_STATS_REGISTRY_HPP

/**
 * @file
 * Thread-safe registry of named counters, gauges, and histograms.
 *
 * Every serving-stack component (Planner step caches, PlanService,
 * NetServer, RouterServer) publishes its runtime counters into one of
 * these under hierarchical dotted names — `serve.requests`,
 * `net.conn.accepted`, `router.shard.127.0.0.1:9001.routed` — instead
 * of keeping private ad-hoc atomics. The existing stats structs
 * (ServiceStats, NetServerStats, RouterStats) are *views* over the
 * registry: they read the same cells, so pinned counter values are
 * unchanged by the migration. The registry is what the live `stats`
 * protocol query scrapes and what `--stats-json/--stats-csv` dump on
 * exit (the DNNsim Statistics/StatsWriter shape).
 *
 * Concurrency contract (mirrors PlannerStats):
 *
 * - `counter()/gauge()/histogram()` return stable references — entries
 *   are never removed, and the owning maps never invalidate references
 *   on insert. Registration takes the registry mutex; do it once at
 *   setup, keep the reference, and publish through it.
 * - Publishing (`StatsCounter::add`, `StatsGauge::set`,
 *   `Histogram::add`) is lock-free relaxed-atomic — safe on hot paths,
 *   no mutex, no fence beyond the atomic op itself.
 * - `snapshot()` is point-in-time consistent the way `Planner::stats()`
 *   is: each cell is read atomically (never torn), but cells racing
 *   with in-flight publishes may disagree by the handful of operations
 *   still in flight. Quiesce writers first if you need exact totals —
 *   tests and the benches snapshot after joining their workers.
 *
 * The registry is deliberately instance-based, not a process singleton:
 * tests build many services per process, and a shared PlanService +
 * NetServer pair share one registry so a shard's `stats` answer covers
 * both layers.
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/result.hpp"

namespace ftsim {

class StatsRegistry;

/** Monotonic lock-free counter cell. */
class StatsCounter {
  public:
    StatsCounter() = default;
    StatsCounter(const StatsCounter&) = delete;
    StatsCounter& operator=(const StatsCounter&) = delete;

    void add(std::uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
    void inc() { add(1); }
    std::uint64_t load() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-write-wins lock-free gauge cell. */
class StatsGauge {
  public:
    StatsGauge() = default;
    StatsGauge(const StatsGauge&) = delete;
    StatsGauge& operator=(const StatsGauge&) = delete;

    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double load() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/** One named value inside a snapshot. */
struct StatEntry {
    std::string name;
    /** True for counters (rendered without a decimal point). */
    bool integral = true;
    std::uint64_t count = 0;
    double value = 0.0;

    double num() const
    {
        return integral ? static_cast<double>(count) : value;
    }
};

/** Point-in-time snapshot of a registry; sorted by name. */
struct StatsSnapshot {
    std::vector<StatEntry> entries;

    /** Entry by exact name, or nullptr. */
    const StatEntry* find(const std::string& name) const;

    /** Counter value by name (0 when absent). */
    std::uint64_t counter(const std::string& name) const;

    /** Flat single-line JSON object: {"a.b":1,"c":2.5,...}. */
    std::string toJson() const;

    /** CSV with a name,value header (the DNNsim StatsWriter shape). */
    std::string toCsv() const;
};

/**
 * The registry. See the @file contract; one instance per logical
 * process component tree (service + its net front end share one).
 */
class StatsRegistry {
  public:
    /**
     * Collector handed to providers at snapshot time. Providers
     * contribute dynamic rows — per-tenant tables, LRU sizes, queue
     * depths, latency quantiles — that have no fixed cell to publish
     * into.
     */
    class Sink {
      public:
        void counter(const std::string& name, std::uint64_t v);
        void gauge(const std::string& name, double v);

      private:
        friend class StatsRegistry;
        explicit Sink(std::vector<StatEntry>& out) : out_(out) {}
        std::vector<StatEntry>& out_;
    };

    using Provider = std::function<void(Sink&)>;

    StatsRegistry() = default;
    StatsRegistry(const StatsRegistry&) = delete;
    StatsRegistry& operator=(const StatsRegistry&) = delete;

    /** Counter cell under @p name (registered on first use). */
    StatsCounter& counter(const std::string& name);

    /** Gauge cell under @p name (registered on first use). */
    StatsGauge& gauge(const std::string& name);

    /**
     * Histogram cell under @p name. The shape arguments apply on first
     * registration only; snapshots expose `<name>.count`, `<name>.p50`,
     * and `<name>.p99`.
     */
    Histogram& histogram(const std::string& name, double lo, double hi,
                         std::size_t num_bins);

    /**
     * Registers a snapshot-time provider; returns a token for
     * `removeProvider`. Providers run under the registry mutex — they
     * may take component locks (registry -> component ordering) but
     * must never call back into this registry.
     */
    std::size_t addProvider(Provider provider);

    /** Unregisters a provider; outliving the component is a use-after-free. */
    void removeProvider(std::size_t token);

    /** Collects every cell and provider row into a sorted snapshot. */
    StatsSnapshot snapshot() const;

  private:
    mutable std::mutex mutex_;
    // std::map: node-based, so cell references stay valid forever.
    std::map<std::string, StatsCounter> counters_;
    std::map<std::string, StatsGauge> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
    std::map<std::size_t, Provider> providers_;
    std::size_t next_provider_ = 0;
};

/** JSON string literal (quotes + escapes) for embedding names. */
std::string jsonQuote(const std::string& s);

/**
 * One-line-per-subsystem stderr summary shared by ftsim_serve,
 * ftsim_served, and ftsim_router: entries grouped by their first dotted
 * segment, `<tool>: <group>: key=value ...` per group.
 */
std::string formatStatsSummary(const StatsSnapshot& snapshot,
                               const std::string& tool);

/** Writes `snapshot.toJson()` (plus trailing newline) to @p path. */
Result<bool> writeStatsJson(const StatsSnapshot& snapshot,
                            const std::string& path);

/** Writes `snapshot.toCsv()` to @p path. */
Result<bool> writeStatsCsv(const StatsSnapshot& snapshot,
                           const std::string& path);

}  // namespace ftsim

#endif  // FTSIM_COMMON_STATS_REGISTRY_HPP
