#ifndef FTSIM_COMMON_PARALLEL_HPP
#define FTSIM_COMMON_PARALLEL_HPP

/**
 * @file
 * Minimal fork-join parallelism for fan-out sweeps.
 *
 * `parallelFor` runs `body(i)` for i in [0, n) on up to `threads`
 * workers pulling indices from a shared atomic counter (work stealing
 * at index granularity). With `threads <= 1` (or n <= 1) it degrades to
 * a plain serial loop — callers need no separate code path. Exceptions
 * escaping `body` are captured and the first one is rethrown on the
 * calling thread after the join.
 */

#include <cstddef>
#include <functional>

namespace ftsim {

/** Hardware concurrency with a sane floor of 1. */
unsigned hardwareThreads();

/**
 * Runs @p body over [0, n) on up to @p threads workers and joins.
 * @p body must be safe to call concurrently for distinct indices.
 * A parallelFor invoked from inside another parallelFor's body runs
 * serially (the outer loop owns the thread budget; nesting would
 * oversubscribe the machine quadratically).
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& body);

}  // namespace ftsim

#endif  // FTSIM_COMMON_PARALLEL_HPP
