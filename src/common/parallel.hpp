#ifndef FTSIM_COMMON_PARALLEL_HPP
#define FTSIM_COMMON_PARALLEL_HPP

/**
 * @file
 * Minimal fork-join parallelism for fan-out sweeps.
 *
 * `parallelFor` runs `body(i)` for i in [0, n) on up to `threads`
 * workers pulling indices from a shared atomic counter (work stealing
 * at index granularity). With `threads <= 1` (or n <= 1) it degrades to
 * a plain serial loop — callers need no separate code path. Exceptions
 * escaping `body` are captured and the first one is rethrown on the
 * calling thread after the join.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ftsim {

/** Hardware concurrency with a sane floor of 1. */
unsigned hardwareThreads();

/**
 * Runs @p body over [0, n) on up to @p threads workers and joins.
 * @p body must be safe to call concurrently for distinct indices.
 * A parallelFor invoked from inside another parallelFor's body runs
 * serially (the outer loop owns the thread budget; nesting would
 * oversubscribe the machine quadratically).
 */
void parallelFor(std::size_t n, unsigned threads,
                 const std::function<void(std::size_t)>& body);

/**
 * Persistent FIFO worker pool for request-serving workloads.
 *
 * `parallelFor` is fork-join: it owns its workers for one bounded
 * sweep and then tears them down. A server instead admits an unbounded
 * stream of independent tasks, so `WorkerPool` keeps its threads alive
 * and feeds them from a mutex-guarded queue. Tasks must not throw
 * (wrap fallible work and encode failure in the task's own result
 * channel); an escaping exception terminates the process, as it would
 * from any detached thread. The destructor drains every queued task
 * before joining, so submitted work is never silently dropped.
 */
class WorkerPool {
  public:
    /** Starts @p threads workers (floored at 1). */
    explicit WorkerPool(unsigned threads);

    /** Finishes all queued tasks, then joins the workers. */
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    /** Enqueues @p task; fatal if called during destruction. */
    void submit(std::function<void()> task);

    /** Number of worker threads. */
    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Tasks queued but not yet picked up by a worker — the admission
     * backlog a serving stats endpoint reports. A task being executed
     * right now is counted by neither this nor any other accessor.
     */
    std::size_t pendingTasks() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return queue_.size();
    }

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_PARALLEL_HPP
