#include "common/interner.hpp"

#include "common/logging.hpp"

namespace ftsim {

std::uint32_t
StringInterner::intern(std::string_view s)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(s);
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    index_.emplace(std::string_view(strings_.back()), id);
    return id;
}

const std::string&
StringInterner::name(std::uint32_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (id >= strings_.size())
        panic(strCat("StringInterner::name: unknown id ", id));
    // Safe to hand out past the unlock: deque elements are never
    // relocated or erased.
    return strings_[id];
}

std::size_t
StringInterner::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return strings_.size();
}

}  // namespace ftsim
