#include "common/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hpp"

namespace ftsim {

namespace {

/** True on threads already executing inside a parallelFor region. */
thread_local bool in_parallel_region = false;

}  // namespace

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
parallelFor(std::size_t n, unsigned threads,
            const std::function<void(std::size_t)>& body)
{
    if (n == 0)
        return;
    unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads, n));
    // A parallelFor nested inside another parallelFor's body degrades
    // to serial: the outer loop already owns the thread budget, and
    // multiplying worker counts (outer x inner) would oversubscribe
    // the machine instead of speeding anything up.
    if (in_parallel_region)
        workers = 1;
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
        in_parallel_region = true;
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                }
                // Drain the counter so the pool stops promptly instead
                // of burning the rest of the sweep before rethrowing.
                next.store(n);
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    for (unsigned t = 1; t < workers; ++t)
        pool.emplace_back(worker);
    worker();  // The calling thread is worker 0.
    in_parallel_region = false;  // Pool threads exit; only we persist.
    for (std::thread& t : pool)
        t.join();
    if (first_error)
        std::rethrow_exception(first_error);
}

WorkerPool::WorkerPool(unsigned threads)
{
    const unsigned n = threads > 0 ? threads : 1;
    workers_.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
}

void
WorkerPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            fatal("WorkerPool::submit: pool is shutting down");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
WorkerPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            // Drain before exiting: stop only once the queue is empty.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

}  // namespace ftsim
