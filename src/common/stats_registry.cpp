#include "common/stats_registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hpp"

namespace ftsim {

namespace {

/** Integral doubles print bare; everything else losslessly (%.17g). */
std::string
fmtStatNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15)
        return strCat(static_cast<long long>(v));
    return strExact(v);
}

std::string
entryValue(const StatEntry& e)
{
    if (e.integral)
        return strCat(e.count);
    return fmtStatNumber(e.value);
}

/** CSV field: quoted (with doubled quotes) only when it needs to be. */
std::string
csvField(const std::string& s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string
jsonQuote(const std::string& s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

const StatEntry*
StatsSnapshot::find(const std::string& name) const
{
    // Entries are sorted by name; binary search.
    auto it = std::lower_bound(
        entries.begin(), entries.end(), name,
        [](const StatEntry& e, const std::string& n) { return e.name < n; });
    if (it == entries.end() || it->name != name)
        return nullptr;
    return &*it;
}

std::uint64_t
StatsSnapshot::counter(const std::string& name) const
{
    const StatEntry* e = find(name);
    return e ? e->count : 0;
}

std::string
StatsSnapshot::toJson() const
{
    std::string out = "{";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (i)
            out += ',';
        out += jsonQuote(entries[i].name);
        out += ':';
        out += entryValue(entries[i]);
    }
    out += '}';
    return out;
}

std::string
StatsSnapshot::toCsv() const
{
    std::string out = "name,value\n";
    for (const StatEntry& e : entries) {
        out += csvField(e.name);
        out += ',';
        out += entryValue(e);
        out += '\n';
    }
    return out;
}

void
StatsRegistry::Sink::counter(const std::string& name, std::uint64_t v)
{
    StatEntry e;
    e.name = name;
    e.integral = true;
    e.count = v;
    out_.push_back(std::move(e));
}

void
StatsRegistry::Sink::gauge(const std::string& name, double v)
{
    StatEntry e;
    e.name = name;
    e.integral = false;
    e.value = v;
    out_.push_back(std::move(e));
}

StatsCounter&
StatsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_[name];
}

StatsGauge&
StatsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return gauges_[name];
}

Histogram&
StatsRegistry::histogram(const std::string& name, double lo, double hi,
                         std::size_t num_bins)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>(lo, hi, num_bins);
    return *slot;
}

std::size_t
StatsRegistry::addProvider(Provider provider)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t token = next_provider_++;
    providers_.emplace(token, std::move(provider));
    return token;
}

void
StatsRegistry::removeProvider(std::size_t token)
{
    std::lock_guard<std::mutex> lock(mutex_);
    providers_.erase(token);
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    snap.entries.reserve(counters_.size() + gauges_.size() +
                         3 * histograms_.size());
    for (const auto& [name, cell] : counters_) {
        StatEntry e;
        e.name = name;
        e.integral = true;
        e.count = cell.load();
        snap.entries.push_back(std::move(e));
    }
    for (const auto& [name, cell] : gauges_) {
        StatEntry e;
        e.name = name;
        e.integral = false;
        e.value = cell.load();
        snap.entries.push_back(std::move(e));
    }
    for (const auto& [name, hist] : histograms_) {
        StatEntry c;
        c.name = strCat(name, ".count");
        c.integral = true;
        c.count = hist->count();
        snap.entries.push_back(std::move(c));
        StatEntry p50;
        p50.name = strCat(name, ".p50");
        p50.integral = false;
        p50.value = hist->quantile(0.50);
        snap.entries.push_back(std::move(p50));
        StatEntry p99;
        p99.name = strCat(name, ".p99");
        p99.integral = false;
        p99.value = hist->quantile(0.99);
        snap.entries.push_back(std::move(p99));
    }
    Sink sink(snap.entries);
    for (const auto& [token, provider] : providers_)
        provider(sink);
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const StatEntry& a, const StatEntry& b) {
                  return a.name < b.name;
              });
    return snap;
}

std::string
formatStatsSummary(const StatsSnapshot& snapshot, const std::string& tool)
{
    std::string out;
    std::string group;
    for (const StatEntry& e : snapshot.entries) {
        const std::size_t dot = e.name.find('.');
        const std::string head =
            dot == std::string::npos ? e.name : e.name.substr(0, dot);
        const std::string tail =
            dot == std::string::npos ? e.name : e.name.substr(dot + 1);
        if (head != group) {
            if (!out.empty())
                out += '\n';
            out += strCat(tool, ": ", head, ':');
            group = head;
        }
        out += strCat(' ', tail, '=', entryValue(e));
    }
    if (!out.empty())
        out += '\n';
    return out;
}

Result<bool>
writeStatsJson(const StatsSnapshot& snapshot, const std::string& path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Result<bool>::failure(
            ErrorCode::InvalidArgument,
            strCat("cannot open stats JSON path: ", path));
    out << snapshot.toJson() << '\n';
    out.flush();
    if (!out)
        return Result<bool>::failure(
            ErrorCode::InvalidArgument,
            strCat("short write to stats JSON path: ", path));
    return true;
}

Result<bool>
writeStatsCsv(const StatsSnapshot& snapshot, const std::string& path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return Result<bool>::failure(
            ErrorCode::InvalidArgument,
            strCat("cannot open stats CSV path: ", path));
    out << snapshot.toCsv();
    out.flush();
    if (!out)
        return Result<bool>::failure(
            ErrorCode::InvalidArgument,
            strCat("short write to stats CSV path: ", path));
    return true;
}

}  // namespace ftsim
