#ifndef FTSIM_COMMON_RNG_HPP
#define FTSIM_COMMON_RNG_HPP

/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the reproduction (dataset synthesis, weight
 * initialization, dropout, sampling) draw from Rng so that every experiment
 * is reproducible from a single seed. The core generator is SplitMix64,
 * which is small, fast, and has well-understood statistical quality for
 * simulation purposes.
 */

#include <cstdint>
#include <vector>

namespace ftsim {

/** Deterministic seedable PRNG with the distributions the repo needs. */
class Rng {
  public:
    /** Constructs a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed) {}

    /** Returns the next raw 64-bit value (SplitMix64). */
    std::uint64_t nextU64();

    /** Returns a uniform double in [0, 1). */
    double uniform();

    /** Returns a uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Returns a uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Returns a standard normal sample (Box-Muller, cached pair). */
    double normal();

    /** Returns a normal sample with the given mean and stddev. */
    double normal(double mean, double stddev);

    /**
     * Returns a log-normal sample where the *underlying* normal has the
     * given mu and sigma. Median of the distribution is exp(mu).
     */
    double logNormal(double mu, double sigma);

    /** Returns true with probability p. */
    bool bernoulli(double p);

    /**
     * Samples an index from an unnormalized non-negative weight vector.
     * Weights summing to zero are a caller bug (panics).
     */
    std::size_t categorical(const std::vector<double>& weights);

    /** Fisher-Yates shuffles indices [0, n) and returns the permutation. */
    std::vector<std::size_t> permutation(std::size_t n);

    /** Derives an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t state_;
    bool hasCachedNormal_ = false;
    double cachedNormal_ = 0.0;
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_RNG_HPP
