#ifndef FTSIM_COMMON_INTERNER_HPP
#define FTSIM_COMMON_INTERNER_HPP

/**
 * @file
 * Thread-safe string interning.
 *
 * Hot paths that used to carry `std::string` payloads (one heap
 * allocation per kernel descriptor per simulated step) instead carry a
 * 32-bit id into a `StringInterner`. Interning is idempotent — the same
 * spelling always yields the same id — so ids are valid equality keys.
 *
 * Storage is a `std::deque`, which never relocates elements: the
 * `const std::string&` returned by `name()` stays valid for the
 * interner's lifetime even while other threads intern new strings.
 */

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace ftsim {

/** Append-only string pool handing out stable 32-bit ids. */
class StringInterner {
  public:
    StringInterner() = default;
    StringInterner(const StringInterner&) = delete;
    StringInterner& operator=(const StringInterner&) = delete;

    /** The id for @p s, interning it on first sight. Thread-safe. */
    std::uint32_t intern(std::string_view s);

    /**
     * The spelling behind @p id. The reference is stable for the
     * interner's lifetime. Panics on an id this interner never issued.
     */
    const std::string& name(std::uint32_t id) const;

    /** Number of distinct strings interned so far. */
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    /** Deque: element addresses are stable across push_back. */
    std::deque<std::string> strings_;
    /** Views point into strings_ elements (stable, never erased). */
    std::unordered_map<std::string_view, std::uint32_t> index_;
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_INTERNER_HPP
