#ifndef FTSIM_COMMON_MATH_UTIL_HPP
#define FTSIM_COMMON_MATH_UTIL_HPP

/**
 * @file
 * Small numeric helpers shared across modules.
 */

#include <cmath>
#include <cstdint>
#include <string>

namespace ftsim {

/** Integer ceiling division for non-negative operands. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** Rounds @p a up to the nearest multiple of @p b (b > 0). */
constexpr std::int64_t
roundUp(std::int64_t a, std::int64_t b)
{
    return ceilDiv(a, b) * b;
}

/** Clamps x to [lo, hi]. */
constexpr double
clamp(double x, double lo, double hi)
{
    return x < lo ? lo : (x > hi ? hi : x);
}

/** Relative-tolerance float comparison with an absolute floor. */
inline bool
approxEqual(double a, double b, double rel_tol = 1e-9,
            double abs_tol = 1e-12)
{
    double diff = std::abs(a - b);
    if (diff <= abs_tol)
        return true;
    return diff <= rel_tol * std::max(std::abs(a), std::abs(b));
}

/** Bytes in one gibibyte. */
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/** Bytes in one mebibyte. */
constexpr double kMiB = 1024.0 * 1024.0;

/** Formats a byte count as a human-readable string ("23.35 GiB"). */
std::string formatBytes(double bytes);

/** Formats seconds adaptively ("1.23 s", "456.0 us", "789 ns"). */
std::string formatSeconds(double seconds);

/** Formats a large count with unit suffix ("47.0B", "2.8B", "15K"). */
std::string formatCount(double count);

/**
 * Inverse standard-normal CDF (Acklam's rational approximation,
 * |error| < 1.2e-9). Fatal for p outside (0, 1).
 */
double normalQuantile(double p);

/**
 * Expected padded-length amplification of a size-@p batch drawn from a
 * log-normal length distribution with shape @p sigma: batches pad every
 * query to the batch maximum, so the effective tokens per query is the
 * dataset median times this factor. Uses Blom's order-statistic
 * approximation E[max of n] ~ median * exp(sigma * z_{(n)}).
 */
double expectedBatchMaxFactor(std::size_t batch, double sigma);

}  // namespace ftsim

#endif  // FTSIM_COMMON_MATH_UTIL_HPP
