#ifndef FTSIM_COMMON_STATS_HPP
#define FTSIM_COMMON_STATS_HPP

/**
 * @file
 * Summary statistics used across the characterization study.
 *
 * The paper reports medians (Fig. 2), variances of expert-token
 * distributions (Fig. 11), and RMSE of the analytical model against
 * measured throughput (Figs. 14-15). All of those live here, along with a
 * Welford-style streaming accumulator for profiling counters.
 */

#include <cstddef>
#include <vector>

namespace ftsim {

/** Streaming mean/variance accumulator (Welford's algorithm). */
class RunningStats {
  public:
    /** Adds one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return count_; }

    /** Mean of the observations (0 if empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (divides by n; 0 if fewer than 1 sample). */
    double variance() const;

    /** Sample variance (divides by n-1; 0 if fewer than 2 samples). */
    double sampleVariance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (+inf if empty). */
    double min() const { return min_; }

    /** Largest observation (-inf if empty). */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Merges another accumulator into this one (parallel reduction). */
    void merge(const RunningStats& other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1e308;
    double max_ = -1e308;
};

/** Arithmetic mean of a vector (0 for empty input). */
double mean(const std::vector<double>& xs);

/** Population variance of a vector (0 for empty input). */
double variance(const std::vector<double>& xs);

/** Population standard deviation of a vector. */
double stddev(const std::vector<double>& xs);

/**
 * Median via the midpoint convention for even sizes.
 * Fatal on empty input (a median of nothing is a caller error).
 */
double median(std::vector<double> xs);

/**
 * Linear-interpolated percentile, p in [0, 100].
 * Fatal on empty input or out-of-range p.
 */
double percentile(std::vector<double> xs, double p);

/**
 * Root mean squared error between predictions and ground truth.
 * The paper validates Eq. (2) with this metric (RMSE < 0.8 on A40).
 * Fatal on size mismatch or empty input.
 */
double rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual);

/** Mean absolute error; companion metric to rmse(). */
double meanAbsError(const std::vector<double>& predicted,
                    const std::vector<double>& actual);

/**
 * Coefficient of determination R^2 of predictions vs. actual values.
 * Returns 1 for a perfect fit; can be negative for fits worse than the
 * mean. Fatal on size mismatch or empty input.
 */
double rSquared(const std::vector<double>& predicted,
                const std::vector<double>& actual);

/** Pearson correlation coefficient. Fatal on size mismatch / n < 2. */
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace ftsim

#endif  // FTSIM_COMMON_STATS_HPP
