#ifndef FTSIM_COMMON_LOGGING_HPP
#define FTSIM_COMMON_LOGGING_HPP

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for conditions that are the
 * *user's* fault (bad configuration, impossible parameters) and throws a
 * recoverable error; panic() is for conditions that indicate a bug in the
 * library itself and aborts. inform()/warn() print status without stopping
 * the run.
 */

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ftsim {

/** Severity levels for the global logger. */
enum class LogLevel : std::uint8_t {
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
    Silent = 4,
};

/** Error thrown by fatal(): a user-facing configuration problem. */
class FatalError : public std::runtime_error {
  public:
    explicit FatalError(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/**
 * Minimal global logger.
 *
 * The simulator is single-threaded per run, so a process-global level is
 * sufficient; tests raise the threshold to keep output clean.
 */
class Logger {
  public:
    /** Returns the process-global logger instance. */
    static Logger& instance();

    /** Sets the minimum severity that is printed. */
    void setLevel(LogLevel level) { level_ = level; }

    /** Returns the current minimum severity. */
    LogLevel level() const { return level_; }

    /** Emits one message at the given severity to stderr. */
    void emit(LogLevel severity, const std::string& message);

  private:
    Logger() = default;

    LogLevel level_ = LogLevel::Info;
};

/** Prints an informational status message (normal operation). */
void inform(const std::string& message);

/** Prints a warning: something is suspicious but the run continues. */
void warn(const std::string& message);

/** Prints a debug-level message (hidden unless LogLevel::Debug). */
void debug(const std::string& message);

/**
 * Reports an unrecoverable *user* error (bad configuration, invalid
 * arguments) and throws FatalError. Mirrors gem5's fatal().
 */
[[noreturn]] void fatal(const std::string& message);

/**
 * Reports an internal invariant violation (a bug in this library) and
 * aborts. Mirrors gem5's panic().
 */
[[noreturn]] void panic(const std::string& message);

/**
 * Convenience formatter: streams all arguments into one string.
 *
 * Example: fatal(strCat("batch size ", bsz, " exceeds maximum ", max));
 */
template <typename... Args>
std::string
strCat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/**
 * Lossless double-to-string for cache keys and fingerprints. strCat's
 * default ostream precision keeps only 6 significant digits, so two
 * values differing past the 6th digit would collide as keys — %.17g
 * round-trips every distinct double to a distinct spelling.
 */
inline std::string
strExact(double x)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", x);
    return buf;
}

}  // namespace ftsim

#endif  // FTSIM_COMMON_LOGGING_HPP
