#include "common/fit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hpp"

namespace ftsim {

namespace {

/** Sum of squared residuals; +inf if the model emits a non-finite value. */
double
sumSquaredResiduals(const ParametricFn& fn,
                    const std::vector<Observation>& data,
                    const std::vector<double>& params)
{
    double acc = 0.0;
    for (const auto& obs : data) {
        double pred = fn(obs.x, params);
        if (!std::isfinite(pred))
            return std::numeric_limits<double>::infinity();
        double r = pred - obs.y;
        acc += r * r;
    }
    return acc;
}

double
toRmse(double ssr, std::size_t n)
{
    if (!std::isfinite(ssr))
        return std::numeric_limits<double>::infinity();
    return std::sqrt(ssr / static_cast<double>(n));
}

}  // namespace

std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> m, std::vector<double> b)
{
    const std::size_t n = b.size();
    if (m.size() != n)
        fatal("solveLinearSystem: dimension mismatch");
    for (const auto& row : m)
        if (row.size() != n)
            fatal("solveLinearSystem: non-square matrix");

    for (std::size_t col = 0; col < n; ++col) {
        // Partial pivot: largest magnitude in this column.
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::abs(m[r][col]) > std::abs(m[pivot][col]))
                pivot = r;
        if (std::abs(m[pivot][col]) < 1e-300)
            fatal("solveLinearSystem: singular matrix");
        std::swap(m[col], m[pivot]);
        std::swap(b[col], b[pivot]);

        for (std::size_t r = col + 1; r < n; ++r) {
            double factor = m[r][col] / m[col][col];
            for (std::size_t c = col; c < n; ++c)
                m[r][c] -= factor * m[col][c];
            b[r] -= factor * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (std::size_t c = i + 1; c < n; ++c)
            acc -= m[i][c] * x[c];
        x[i] = acc / m[i][i];
    }
    return x;
}

FitResult
fitLeastSquares(const ParametricFn& fn, const std::vector<Observation>& data,
                const std::vector<double>& initial_params,
                const LmOptions& options)
{
    if (data.empty())
        fatal("fitLeastSquares: no observations");
    if (initial_params.empty())
        fatal("fitLeastSquares: no parameters");

    const std::size_t n = data.size();
    const std::size_t k = initial_params.size();

    std::vector<double> params = initial_params;
    double ssr = sumSquaredResiduals(fn, data, params);
    if (!std::isfinite(ssr)) {
        fatal("fitLeastSquares: initial parameters give non-finite "
              "residuals; pick a feasible starting point");
    }
    double lambda = options.initialLambda;

    FitResult result;
    result.params = params;
    result.rmse = toRmse(ssr, n);

    for (std::size_t iter = 0; iter < options.maxIterations; ++iter) {
        result.iterations = iter + 1;

        // Residuals and forward-difference Jacobian at current params.
        std::vector<double> residuals(n);
        std::vector<std::vector<double>> jac(n, std::vector<double>(k));
        for (std::size_t i = 0; i < n; ++i)
            residuals[i] = fn(data[i].x, params) - data[i].y;
        for (std::size_t j = 0; j < k; ++j) {
            double step =
                options.jacobianStep * std::max(1.0, std::abs(params[j]));
            std::vector<double> bumped = params;
            bumped[j] += step;
            for (std::size_t i = 0; i < n; ++i) {
                double f1 = fn(data[i].x, bumped);
                double f0 = residuals[i] + data[i].y;
                jac[i][j] = std::isfinite(f1) ? (f1 - f0) / step : 0.0;
            }
        }

        // Normal equations: (J^T J + lambda diag(J^T J)) delta = -J^T r.
        std::vector<std::vector<double>> jtj(k, std::vector<double>(k, 0.0));
        std::vector<double> jtr(k, 0.0);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t a = 0; a < k; ++a) {
                jtr[a] += jac[i][a] * residuals[i];
                for (std::size_t b = a; b < k; ++b)
                    jtj[a][b] += jac[i][a] * jac[i][b];
            }
        }
        for (std::size_t a = 0; a < k; ++a)
            for (std::size_t b = 0; b < a; ++b)
                jtj[a][b] = jtj[b][a];

        bool stepped = false;
        for (int attempt = 0; attempt < 24 && !stepped; ++attempt) {
            auto damped = jtj;
            for (std::size_t a = 0; a < k; ++a) {
                double d = jtj[a][a];
                damped[a][a] = d + lambda * std::max(d, 1e-12);
            }
            std::vector<double> rhs(k);
            for (std::size_t a = 0; a < k; ++a)
                rhs[a] = -jtr[a];

            std::vector<double> delta;
            try {
                delta = solveLinearSystem(damped, rhs);
            } catch (const FatalError&) {
                lambda *= 10.0;
                continue;
            }

            std::vector<double> trial = params;
            for (std::size_t a = 0; a < k; ++a)
                trial[a] += delta[a];
            double trial_ssr = sumSquaredResiduals(fn, data, trial);
            if (trial_ssr < ssr) {
                double improvement =
                    (ssr - trial_ssr) / std::max(ssr, 1e-300);
                params = trial;
                ssr = trial_ssr;
                lambda = std::max(lambda * 0.3, 1e-12);
                stepped = true;
                if (improvement < options.tolerance) {
                    result.converged = true;
                    result.params = params;
                    result.rmse = toRmse(ssr, n);
                    return result;
                }
            } else {
                lambda *= 10.0;
            }
        }
        if (!stepped) {
            // Damping exhausted: local minimum within numeric precision.
            result.converged = true;
            break;
        }
    }

    result.params = params;
    result.rmse = toRmse(ssr, n);
    return result;
}

FitResult
fitGridSearch(const ParametricFn& fn, const std::vector<Observation>& data,
              const std::vector<double>& initial_params,
              const std::vector<double>& radii,
              const GridSearchOptions& options)
{
    if (data.empty())
        fatal("fitGridSearch: no observations");
    if (initial_params.size() != radii.size())
        fatal("fitGridSearch: params/radii size mismatch");
    if (options.pointsPerAxis < 3)
        fatal("fitGridSearch: need at least 3 points per axis");

    std::vector<double> best = initial_params;
    double best_ssr = sumSquaredResiduals(fn, data, best);
    std::vector<double> step = radii;

    FitResult result;
    for (std::size_t pass = 0; pass < options.passes; ++pass) {
        // Coordinate sweeps: repeat until no axis improves this pass.
        bool improved = true;
        while (improved) {
            improved = false;
            for (std::size_t j = 0; j < best.size(); ++j) {
                if (step[j] == 0.0)
                    continue;
                double center = best[j];
                const auto pts =
                    static_cast<std::ptrdiff_t>(options.pointsPerAxis / 2);
                for (std::ptrdiff_t s = -pts; s <= pts; ++s) {
                    if (s == 0)
                        continue;
                    std::vector<double> trial = best;
                    trial[j] = center + static_cast<double>(s) * step[j] /
                                            static_cast<double>(pts);
                    double ssr = sumSquaredResiduals(fn, data, trial);
                    if (ssr < best_ssr) {
                        best_ssr = ssr;
                        best = trial;
                        improved = true;
                    }
                }
            }
            ++result.iterations;
            if (result.iterations > 10000)
                break;  // Pathological objective; bail out defensively.
        }
        for (double& s : step)
            s *= options.shrink;
    }

    result.params = best;
    result.rmse = toRmse(best_ssr, data.size());
    result.converged = std::isfinite(result.rmse);
    return result;
}

std::vector<double>
linearLeastSquares(const std::vector<std::vector<double>>& rows,
                   const std::vector<double>& y)
{
    if (rows.empty() || rows.size() != y.size())
        fatal("linearLeastSquares: dimension mismatch");
    const std::size_t k = rows[0].size();
    for (const auto& row : rows)
        if (row.size() != k)
            fatal("linearLeastSquares: ragged design matrix");

    std::vector<std::vector<double>> ata(k, std::vector<double>(k, 0.0));
    std::vector<double> aty(k, 0.0);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t a = 0; a < k; ++a) {
            aty[a] += rows[i][a] * y[i];
            for (std::size_t b = a; b < k; ++b)
                ata[a][b] += rows[i][a] * rows[i][b];
        }
    }
    for (std::size_t a = 0; a < k; ++a)
        for (std::size_t b = 0; b < a; ++b)
            ata[a][b] = ata[b][a];
    return solveLinearSystem(std::move(ata), std::move(aty));
}

}  // namespace ftsim
