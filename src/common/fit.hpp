#ifndef FTSIM_COMMON_FIT_HPP
#define FTSIM_COMMON_FIT_HPP

/**
 * @file
 * Curve-fitting utilities.
 *
 * The paper fits its analytical models with scipy; this module provides
 * the C++ equivalents: a damped Gauss-Newton (Levenberg-Marquardt)
 * nonlinear least-squares solver with a numeric Jacobian (used for the
 * throughput model, Eq. 2), a coordinate grid-search refiner (used for the
 * integer-floor batch-size model, Eq. 1, whose objective is piecewise
 * constant and thus gradient-free), and ordinary linear least squares.
 */

#include <cstddef>
#include <functional>
#include <vector>

namespace ftsim {

/**
 * A parametric scalar model y = f(x; params) where x may be
 * multi-dimensional. Used as the fitting target for both analytical
 * models in the paper.
 */
using ParametricFn = std::function<double(const std::vector<double>& x,
                                          const std::vector<double>& params)>;

/** One observation: input vector x and observed output y. */
struct Observation {
    std::vector<double> x;
    double y = 0.0;
};

/** Result of a fitting run. */
struct FitResult {
    /** Best parameter vector found. */
    std::vector<double> params;
    /** Root mean squared error at the solution. */
    double rmse = 0.0;
    /** Number of iterations performed. */
    std::size_t iterations = 0;
    /** True if the solver met its convergence tolerance. */
    bool converged = false;
};

/** Options for the Levenberg-Marquardt solver. */
struct LmOptions {
    std::size_t maxIterations = 200;
    /** Stop when the relative RMSE improvement drops below this. */
    double tolerance = 1e-10;
    /** Initial damping factor lambda. */
    double initialLambda = 1e-3;
    /** Relative step used for the numeric (forward-difference) Jacobian. */
    double jacobianStep = 1e-6;
};

/**
 * Nonlinear least squares via Levenberg-Marquardt with a numeric
 * Jacobian. Minimizes sum_i (f(x_i; p) - y_i)^2 starting from
 * @p initial_params.
 *
 * Fatal on empty data or empty parameter vector. Non-finite model output
 * during the search is treated as an infinitely bad step (the damping
 * increase recovers), so fitting log-based models near their domain edge
 * is safe.
 */
FitResult fitLeastSquares(const ParametricFn& fn,
                          const std::vector<Observation>& data,
                          const std::vector<double>& initial_params,
                          const LmOptions& options = {});

/** Options for the coordinate grid-search refiner. */
struct GridSearchOptions {
    /** Number of refinement passes (each pass shrinks the step). */
    std::size_t passes = 6;
    /** Grid points per parameter per pass (odd, centered on current). */
    std::size_t pointsPerAxis = 11;
    /** Step shrink factor between passes. */
    double shrink = 0.35;
};

/**
 * Derivative-free fit: iterated coordinate grid search around
 * @p initial_params with per-parameter initial half-widths @p radii.
 * Suitable for objectives with floors/steps such as Eq. (1).
 */
FitResult fitGridSearch(const ParametricFn& fn,
                        const std::vector<Observation>& data,
                        const std::vector<double>& initial_params,
                        const std::vector<double>& radii,
                        const GridSearchOptions& options = {});

/**
 * Ordinary linear least squares: finds coefficients beta minimizing
 * ||A beta - y||^2 via normal equations with Gaussian elimination and
 * partial pivoting. Fatal on dimension mismatch or a singular system.
 *
 * @param rows design matrix rows (each of equal length).
 * @param y observations (same length as rows).
 */
std::vector<double> linearLeastSquares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& y);

/**
 * Solves the square linear system M x = b in place (Gaussian elimination
 * with partial pivoting). Fatal on singular M. Exposed for reuse by the
 * LM solver and tests.
 */
std::vector<double> solveLinearSystem(std::vector<std::vector<double>> m,
                                      std::vector<double> b);

}  // namespace ftsim

#endif  // FTSIM_COMMON_FIT_HPP
