#ifndef FTSIM_COMMON_LRU_CACHE_HPP
#define FTSIM_COMMON_LRU_CACHE_HPP

/**
 * @file
 * Capacity-bounded least-recently-used cache.
 *
 * The serving layer's answer cache and planner pool were unbounded maps
 * until ISSUE-4: a hostile tenant streaming distinct requests could grow
 * them without limit. `LruCache` is the bounded replacement — a plain
 * map plus a recency list, evicting the least-recently-touched entry
 * once `capacity()` is exceeded. `Planner`'s per-GPU step-cache shards
 * can adopt it later, which is why it lives in common/ rather than
 * serve/.
 *
 * Not internally synchronized: callers guard it with their own mutex
 * (the service already holds one around each cache). Capacity 0 means
 * unbounded — the pre-ISSUE-4 behavior, and the default for embedded
 * uses that know their key population is small.
 *
 * Eviction hands the displaced entries *back to the caller* instead of
 * destroying them under the hood, because evicted values can carry
 * state the owner must account for before letting go (the service folds
 * an evicted planner's step counter into its retired-steps total).
 */

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ftsim {

/** Bounded LRU map from K to V (see file comment). */
template <typename K, typename V>
class LruCache {
  public:
    /** @param capacity maximum entries; 0 = unbounded. */
    explicit LruCache(std::size_t capacity = 0) : capacity_(capacity) {}

    /** Entries currently cached. */
    std::size_t size() const { return items_.size(); }

    /** Largest size() ever reached (capacity-bound audits read this). */
    std::size_t peakSize() const { return peak_; }

    /** Maximum entries (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

    /** Entries evicted over the cache's lifetime. */
    std::uint64_t evictions() const { return evictions_; }

    /**
     * The value for @p key, or nullptr. A hit marks the entry
     * most-recently-used; the pointer is valid until the next mutation.
     */
    V* get(const K& key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return nullptr;
        items_.splice(items_.begin(), items_, it->second);
        return &it->second->second;
    }

    /** get() without the recency touch (introspection only). */
    const V* peek(const K& key) const
    {
        auto it = index_.find(key);
        return it == index_.end() ? nullptr : &it->second->second;
    }

    /**
     * Inserts @p value under @p key (overwriting any existing entry,
     * which counts as a touch, not an eviction) and evicts
     * least-recently-used entries until size() <= capacity(). Returns
     * the evicted entries, oldest last, for the caller to account for.
     */
    std::vector<std::pair<K, V>> put(const K& key, V value)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            it->second->second = std::move(value);
            items_.splice(items_.begin(), items_, it->second);
            return {};
        }
        // Trim before inserting so the bound holds at every instant —
        // the peak audit must never see capacity+1, even transiently.
        std::vector<std::pair<K, V>> evicted;
        if (capacity_ > 0) {
            while (items_.size() >= capacity_) {
                evicted.push_back(std::move(items_.back()));
                index_.erase(evicted.back().first);
                items_.pop_back();
                ++evictions_;
            }
        }
        items_.emplace_front(key, std::move(value));
        index_.emplace(key, items_.begin());
        peak_ = items_.size() > peak_ ? items_.size() : peak_;
        return evicted;
    }

    /** Removes @p key if present (not counted as an eviction). */
    bool erase(const K& key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return false;
        items_.erase(it->second);
        index_.erase(it);
        return true;
    }

    /** Visits every entry, most-recently-used first, without touching. */
    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        for (const auto& [key, value] : items_)
            fn(key, value);
    }

  private:
    std::size_t capacity_;
    /** Front = most recently used. */
    std::list<std::pair<K, V>> items_;
    std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
        index_;
    std::size_t peak_ = 0;
    std::uint64_t evictions_ = 0;
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_LRU_CACHE_HPP
