#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace ftsim {

void
RunningStats::add(double x)
{
    ++count_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (count_ < 1)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
RunningStats::sampleVariance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel merge of Welford accumulators.
    double delta = other.mean_ - mean_;
    std::size_t n = count_ + other.count_;
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    mean_ += delta * nb / static_cast<double>(n);
    m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
    count_ = n;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

double
variance(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    return std::sqrt(variance(xs));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        fatal("median: empty input");
    std::sort(xs.begin(), xs.end());
    std::size_t n = xs.size();
    if (n % 2 == 1)
        return xs[n / 2];
    return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double
percentile(std::vector<double> xs, double p)
{
    if (xs.empty())
        fatal("percentile: empty input");
    if (p < 0.0 || p > 100.0)
        fatal(strCat("percentile: p out of range: ", p));
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, xs.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
rmse(const std::vector<double>& predicted, const std::vector<double>& actual)
{
    if (predicted.size() != actual.size())
        fatal("rmse: size mismatch");
    if (predicted.empty())
        fatal("rmse: empty input");
    double acc = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        double e = predicted[i] - actual[i];
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(predicted.size()));
}

double
meanAbsError(const std::vector<double>& predicted,
             const std::vector<double>& actual)
{
    if (predicted.size() != actual.size())
        fatal("meanAbsError: size mismatch");
    if (predicted.empty())
        fatal("meanAbsError: empty input");
    double acc = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i)
        acc += std::abs(predicted[i] - actual[i]);
    return acc / static_cast<double>(predicted.size());
}

double
rSquared(const std::vector<double>& predicted,
         const std::vector<double>& actual)
{
    if (predicted.size() != actual.size())
        fatal("rSquared: size mismatch");
    if (predicted.empty())
        fatal("rSquared: empty input");
    double m = mean(actual);
    double ss_res = 0.0;
    double ss_tot = 0.0;
    for (std::size_t i = 0; i < actual.size(); ++i) {
        ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
        ss_tot += (actual[i] - m) * (actual[i] - m);
    }
    if (ss_tot == 0.0)
        return ss_res == 0.0 ? 1.0 : 0.0;
    return 1.0 - ss_res / ss_tot;
}

double
pearson(const std::vector<double>& xs, const std::vector<double>& ys)
{
    if (xs.size() != ys.size())
        fatal("pearson: size mismatch");
    if (xs.size() < 2)
        fatal("pearson: need at least two points");
    double mx = mean(xs);
    double my = mean(ys);
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sxy += (xs[i] - mx) * (ys[i] - my);
        sxx += (xs[i] - mx) * (xs[i] - mx);
        syy += (ys[i] - my) * (ys[i] - my);
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

}  // namespace ftsim
