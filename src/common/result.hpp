#ifndef FTSIM_COMMON_RESULT_HPP
#define FTSIM_COMMON_RESULT_HPP

/**
 * @file
 * Typed error handling for the planning API.
 *
 * The planning workflow ("does this model fit, what does it cost?") has
 * legitimate domain failures — an unpriced GPU, a model that does not fit
 * at batch 1 — that callers want to branch on, not die on. `Result<T>`
 * carries either a value or an `Error` (code + human-readable message).
 * The legacy `ExperimentPipeline` / `generateCharacterizationReport`
 * entry points keep their throwing behavior via `valueOrThrow()`.
 *
 * Lives in common/ (not core/) because it is a vocabulary type: the
 * simulator layer (gpusim) reports domain failures the same way the
 * planner does. `core/result.hpp` remains as a forwarding header.
 */

#include <string>
#include <utility>
#include <variant>

#include "common/logging.hpp"

namespace ftsim {

/** Domain failure categories of the planning API. */
enum class ErrorCode {
    /** GPU name absent from the catalog / price list. */
    UnknownGpu,
    /** Model does not fit on the device even at batch size 1. */
    DoesNotFit,
    /** A sweep was requested over an empty GPU or seq-len set. */
    EmptySweep,
    /** A parameter is out of its domain (zero epochs, batch 0, ...). */
    InvalidArgument,
    /** No (GPU, price) combination yields a feasible plan. */
    NoViablePlan,
    /** Admission control rejected the request (tenant quota exceeded);
     *  retriable, unlike the other codes — back off and resubmit. */
    RateLimited,
    /** A required backend (an upstream shard) is down or unreachable;
     *  retriable once the fleet recovers. Surfaced by the router when
     *  a shard dies with requests in flight. */
    Unavailable,
};

/** Stable identifier string for an error code (logs, tests). */
const char* errorCodeName(ErrorCode code);

/** A domain failure: machine-readable code + human-readable message. */
struct Error {
    ErrorCode code = ErrorCode::InvalidArgument;
    std::string message;

    /** "DoesNotFit: Mixtral-8x7B does not fit on A40 (dense)". */
    std::string describe() const
    {
        return strCat(errorCodeName(code), ": ", message);
    }
};

/**
 * Either a value or an `Error`.
 *
 * Success and failure both construct implicitly, so functions can
 * `return value;` or `return Error{code, msg};` directly. Accessing the
 * wrong alternative is a caller bug and panics; use `ok()` first, or one
 * of the lossy accessors (`valueOr`, `valueOrThrow`).
 */
template <typename T>
class Result {
  public:
    /** Success. */
    Result(T value) : state_(std::move(value)) {}

    /** Failure. */
    Result(Error error) : state_(std::move(error)) {}

    /** Failure, inline. */
    static Result failure(ErrorCode code, std::string message)
    {
        return Result(Error{code, std::move(message)});
    }

    /** True if this result holds a value. */
    bool ok() const { return std::holds_alternative<T>(state_); }

    /** True if this result holds a value. */
    explicit operator bool() const { return ok(); }

    /** The value; panics (library-bug abort) when called on an error. */
    const T& value() const
    {
        if (!ok())
            panic(strCat("Result::value on error: ", error().describe()));
        return std::get<T>(state_);
    }

    /** Mutable value accessor; same contract as value(). */
    T& value()
    {
        if (!ok())
            panic(strCat("Result::value on error: ", error().describe()));
        return std::get<T>(state_);
    }

    /** The value, or @p fallback when this is an error. */
    T valueOr(T fallback) const
    {
        return ok() ? std::get<T>(state_) : std::move(fallback);
    }

    /**
     * The value, or throws `FatalError` carrying the error message —
     * the bridge the deprecated fatal-on-error shims stand on.
     */
    const T& valueOrThrow() const
    {
        if (!ok())
            fatal(error().describe());
        return std::get<T>(state_);
    }

    /** The error; panics when called on a success. */
    const Error& error() const
    {
        if (ok())
            panic("Result::error on success");
        return std::get<Error>(state_);
    }

    /** The error code; panics when called on a success. */
    ErrorCode code() const { return error().code; }

  private:
    std::variant<T, Error> state_;
};

}  // namespace ftsim

#endif  // FTSIM_COMMON_RESULT_HPP
