#include "common/rng.hpp"

#include <cmath>
#include <numeric>

#include "common/logging.hpp"

namespace ftsim {

std::uint64_t
Rng::nextU64()
{
    // SplitMix64 (Steele, Lea, Flood 2014). One additive step plus an
    // avalanche; passes BigCrush when used as a stream.
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

double
Rng::uniform()
{
    // 53 random bits -> double in [0, 1).
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::uniformInt: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Modulo bias is negligible for span << 2^64 (all uses here).
    return lo + static_cast<std::int64_t>(nextU64() % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 in (0, 1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::size_t
Rng::categorical(const std::vector<double>& weights)
{
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    if (total <= 0.0)
        panic("Rng::categorical: weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;  // Guard against floating-point round-off.
}

std::vector<std::size_t>
Rng::permutation(std::size_t n)
{
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    for (std::size_t i = n; i > 1; --i) {
        std::size_t j =
            static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
        std::swap(perm[i - 1], perm[j]);
    }
    return perm;
}

Rng
Rng::split()
{
    // Mixing the parent stream twice gives an independent child seed.
    std::uint64_t child_seed = nextU64() ^ 0xd1b54a32d192ed03ULL;
    return Rng(child_seed);
}

}  // namespace ftsim
