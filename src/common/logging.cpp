#include "common/logging.hpp"

#include <cstdlib>
#include <iostream>

namespace ftsim {

Logger&
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::emit(LogLevel severity, const std::string& message)
{
    if (severity < level_)
        return;
    const char* tag = "";
    switch (severity) {
      case LogLevel::Debug:
        tag = "debug: ";
        break;
      case LogLevel::Info:
        tag = "info: ";
        break;
      case LogLevel::Warn:
        tag = "warn: ";
        break;
      case LogLevel::Error:
        tag = "error: ";
        break;
      case LogLevel::Silent:
        return;
    }
    std::cerr << tag << message << '\n';
}

void
inform(const std::string& message)
{
    Logger::instance().emit(LogLevel::Info, message);
}

void
warn(const std::string& message)
{
    Logger::instance().emit(LogLevel::Warn, message);
}

void
debug(const std::string& message)
{
    Logger::instance().emit(LogLevel::Debug, message);
}

void
fatal(const std::string& message)
{
    Logger::instance().emit(LogLevel::Error, "fatal: " + message);
    throw FatalError(message);
}

void
panic(const std::string& message)
{
    // A panic is a library bug: print unconditionally and abort so the
    // failure is loud even when the logger is silenced.
    std::cerr << "panic: " << message << std::endl;
    std::abort();
}

}  // namespace ftsim
