#ifndef FTSIM_TRAIN_TRAINER_HPP
#define FTSIM_TRAIN_TRAINER_HPP

/**
 * @file
 * Fine-tuning driver with the paper's three-stage timing breakdown.
 *
 * Each training step is measured as forward / backward / optimizer, the
 * same decomposition as Fig. 4. On this CPU substrate the absolute times
 * are of course not the A40's, but the *structural* effects reproduce:
 * the optimizer stage is proportional to trainable parameters (large for
 * full fine-tuning, negligible for LoRA), and forward/backward grow with
 * batch size and the number of active experts.
 */

#include <cstddef>

#include "common/rng.hpp"
#include "data/batching.hpp"
#include "data/dataset.hpp"
#include "models/model.hpp"
#include "train/optimizer.hpp"

namespace ftsim {

/** Wall-clock seconds spent in each stage of one or more steps. */
struct StageTimes {
    double forward = 0.0;
    double backward = 0.0;
    double optimizer = 0.0;

    /** Total across stages. */
    double total() const { return forward + backward + optimizer; }

    /** Accumulates another measurement. */
    void operator+=(const StageTimes& other);
};

/** Result of one optimization step. */
struct StepStats {
    double loss = 0.0;
    StageTimes times;
    std::size_t numQueries = 0;
    std::size_t numTokens = 0;
};

/** Result of one epoch. */
struct EpochStats {
    double meanLoss = 0.0;
    StageTimes times;
    std::size_t steps = 0;
    std::size_t numQueries = 0;
    /** End-to-end throughput in the paper's queries/second metric. */
    double queriesPerSecond = 0.0;
};

/** Options controlling the training loop. */
struct TrainerOptions {
    std::size_t batchSize = 8;
    /** Cap on batches per epoch (0 = whole dataset). */
    std::size_t maxBatchesPerEpoch = 0;
    /** Shuffling / sampling seed. */
    std::uint64_t seed = 99;
};

/** Supervised fine-tuning driver. */
class Trainer {
  public:
    /**
     * @param model the miniature MoE LLM (not owned).
     * @param optimizer optimizer over the model's trainable params
     *        (not owned).
     */
    Trainer(MoeLlm& model, Optimizer& optimizer,
            const TrainerOptions& options);

    /** Runs a single step on a pre-collated batch. */
    StepStats trainStep(const Batch& batch);

    /** Runs one epoch over the dataset (shuffled). */
    EpochStats trainEpoch(const Dataset& dataset);

    /** Runs @p epochs epochs; returns per-epoch stats. */
    std::vector<EpochStats> train(const Dataset& dataset,
                                  std::size_t epochs);

    /** The options in effect. */
    const TrainerOptions& options() const { return options_; }

  private:
    MoeLlm& model_;
    Optimizer& optimizer_;
    TrainerOptions options_;
    Rng rng_;
};

/** Exact-match evaluation result (the paper's accuracy metric). */
struct EvalResult {
    /** Fraction of queries whose full answer is predicted exactly. */
    double exactMatch = 0.0;
    std::size_t numQueries = 0;
    double meanLoss = 0.0;
};

/**
 * Teacher-forced exact-match accuracy: a query counts as correct when
 * the argmax prediction at every answer position matches the label.
 * Runs under NoGradGuard.
 *
 * @param limit maximum queries to evaluate (0 = all).
 */
EvalResult evaluateExactMatch(MoeLlm& model, const Dataset& dataset,
                              std::size_t batch_size, std::size_t limit = 0);

}  // namespace ftsim

#endif  // FTSIM_TRAIN_TRAINER_HPP
