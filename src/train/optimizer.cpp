#include "train/optimizer.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace ftsim {

Optimizer::Optimizer(std::vector<Tensor> params, Scalar lr)
    : params_(std::move(params)), lr_(lr)
{
    if (params_.empty())
        fatal("Optimizer: no parameters to optimize");
    for (const auto& p : params_) {
        if (!p.defined())
            fatal("Optimizer: undefined parameter");
        if (!p.requiresGrad())
            fatal("Optimizer: parameter does not require grad (frozen?)");
    }
}

void
Optimizer::zeroGrad()
{
    for (auto& p : params_)
        p.zeroGrad();
}

std::size_t
Optimizer::numElements() const
{
    std::size_t n = 0;
    for (const auto& p : params_)
        n += p.numel();
    return n;
}

Sgd::Sgd(std::vector<Tensor> params, Scalar lr, Scalar momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum)
{
    if (momentum_ != 0.0) {
        velocity_.reserve(params_.size());
        for (const auto& p : params_)
            velocity_.emplace_back(p.numel(), 0.0);
    }
}

void
Sgd::step()
{
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& p = params_[i];
        if (!p.hasGrad())
            continue;  // No gradient reached this parameter this step.
        auto& data = p.data();
        auto& grad = p.grad();
        if (momentum_ == 0.0) {
            for (std::size_t j = 0; j < data.size(); ++j)
                data[j] -= lr_ * grad[j];
        } else {
            auto& vel = velocity_[i];
            for (std::size_t j = 0; j < data.size(); ++j) {
                vel[j] = momentum_ * vel[j] + grad[j];
                data[j] -= lr_ * vel[j];
            }
        }
    }
}

AdamW::AdamW(std::vector<Tensor> params, Scalar lr, Scalar beta1,
             Scalar beta2, Scalar eps, Scalar weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weightDecay_(weight_decay)
{
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
        m_.emplace_back(p.numel(), 0.0);
        v_.emplace_back(p.numel(), 0.0);
    }
}

void
AdamW::step()
{
    ++t_;
    const Scalar bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const Scalar bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (std::size_t i = 0; i < params_.size(); ++i) {
        Tensor& p = params_[i];
        if (!p.hasGrad())
            continue;
        auto& data = p.data();
        auto& grad = p.grad();
        auto& m = m_[i];
        auto& v = v_[i];
        for (std::size_t j = 0; j < data.size(); ++j) {
            m[j] = beta1_ * m[j] + (1.0 - beta1_) * grad[j];
            v[j] = beta2_ * v[j] + (1.0 - beta2_) * grad[j] * grad[j];
            const Scalar m_hat = m[j] / bc1;
            const Scalar v_hat = v[j] / bc2;
            // Decoupled weight decay (the "W" in AdamW).
            data[j] -= lr_ * weightDecay_ * data[j];
            data[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
        }
    }
}

LrSchedule::LrSchedule(Scalar base_lr, std::size_t warmup_steps,
                       std::size_t total_steps, Scalar floor_fraction)
    : baseLr_(base_lr),
      warmupSteps_(warmup_steps),
      totalSteps_(total_steps),
      floor_(floor_fraction)
{
    if (base_lr <= 0.0)
        fatal("LrSchedule: non-positive base lr");
    if (floor_fraction < 0.0 || floor_fraction > 1.0)
        fatal("LrSchedule: floor fraction out of [0, 1]");
    if (total_steps == 0)
        fatal("LrSchedule: zero total steps");
}

Scalar
LrSchedule::lrAt(std::size_t step) const
{
    if (warmupSteps_ > 0 && step < warmupSteps_) {
        return baseLr_ * static_cast<Scalar>(step + 1) /
               static_cast<Scalar>(warmupSteps_);
    }
    if (step >= totalSteps_)
        return baseLr_ * floor_;
    const Scalar progress =
        static_cast<Scalar>(step - warmupSteps_) /
        static_cast<Scalar>(
            std::max<std::size_t>(1, totalSteps_ - warmupSteps_));
    const Scalar cosine = 0.5 * (1.0 + std::cos(M_PI * progress));
    return baseLr_ * (floor_ + (1.0 - floor_) * cosine);
}

}  // namespace ftsim
