#ifndef FTSIM_TRAIN_IMBALANCE_HPP
#define FTSIM_TRAIN_IMBALANCE_HPP

/**
 * @file
 * Expert load-imbalance measurement (Fig. 11 of the paper).
 *
 * Runs a dataset through the model in eval mode and reads the routers'
 * token-assignment counters, reporting the paper's metric: average number
 * of tokens per query routed to each expert, and the variance of that
 * distribution across experts.
 */

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "models/model.hpp"

namespace ftsim {

/** Per-expert load profile over a dataset. */
struct ExpertLoadProfile {
    /** Avg tokens/query routed to each expert (layer-averaged). */
    std::vector<double> avgTokensPerQuery;
    /** Variance of avgTokensPerQuery across experts (Fig. 11 "var"). */
    double varianceAcrossExperts = 0.0;
    /** Queries measured. */
    std::size_t numQueries = 0;
};

/**
 * Measures routing load over the first @p limit queries (0 = all) using
 * the given batch size. Router statistics are reset before and collected
 * after; the model is unchanged.
 */
ExpertLoadProfile measureExpertLoad(MoeLlm& model, const Dataset& dataset,
                                    std::size_t batch_size,
                                    std::size_t limit = 0);

}  // namespace ftsim

#endif  // FTSIM_TRAIN_IMBALANCE_HPP
