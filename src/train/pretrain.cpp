#include "train/pretrain.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "data/batching.hpp"
#include "models/convert.hpp"
#include "train/optimizer.hpp"

namespace ftsim {

namespace {

/**
 * Converts answer-only labels into full-sequence LM labels; with
 * @p exclude_answers the original answer spans stay unlabeled.
 */
void
relabelForLm(Batch& batch, bool exclude_answers)
{
    for (std::size_t r = 0; r < batch.batchSize; ++r) {
        for (std::size_t t = 0; t + 1 < batch.seqLen; ++t) {
            const std::size_t i = r * batch.seqLen + t;
            const bool was_answer = batch.targets[i] != kIgnoreIndex;
            if (exclude_answers && was_answer) {
                // Keep the task mapping unsupervised during LM
                // pre-training.
                batch.targets[i] = kIgnoreIndex;
                continue;
            }
            const int next = batch.ids[i + 1];
            batch.targets[i] =
                (next == Vocab::kPad) ? kIgnoreIndex : next;
        }
        batch.targets[r * batch.seqLen + batch.seqLen - 1] = kIgnoreIndex;
    }
}

}  // namespace

PretrainResult
pretrainLm(MoeLlm& model, const Dataset& corpus, std::size_t steps,
           std::size_t batch_size, double lr, std::uint64_t seed,
           bool exclude_answers)
{
    if (steps == 0)
        fatal("pretrainLm: zero steps");
    if (model.numTrainableParameters() == 0)
        fatal("pretrainLm: model has no trainable parameters "
              "(pass the dense twin, not the QLoRA model)");

    AdamW opt(model.trainableParameters(), lr);
    Rng rng(seed);

    PretrainResult result;
    std::vector<Batch> batches;
    std::size_t cursor = 0;
    for (std::size_t step = 0; step < steps; ++step) {
        if (cursor >= batches.size()) {
            batches = epochBatches(corpus, batch_size, rng);
            cursor = 0;
        }
        Batch batch = batches[cursor++];
        relabelForLm(batch, exclude_answers);

        Tensor loss = model.loss(batch.ids, batch.targets,
                                 batch.batchSize, batch.seqLen,
                                 kIgnoreIndex);
        if (step == 0)
            result.initialLoss = loss.item();
        result.finalLoss = loss.item();
        opt.zeroGrad();
        loss.backward();
        opt.step();
        ++result.steps;
    }
    return result;
}

std::unique_ptr<MoeLlm>
makePretrainedQlora(const MiniModelConfig& cfg, const Dataset& corpus,
                    std::size_t pretrain_steps, std::size_t batch_size,
                    double lr, bool exclude_answers)
{
    MiniModelConfig dense_cfg = cfg;
    dense_cfg.useLora = false;
    MoeLlm dense(dense_cfg);
    pretrainLm(dense, corpus, pretrain_steps, batch_size, lr,
               /*seed=*/7, exclude_answers);

    MiniModelConfig qlora_cfg = cfg;
    qlora_cfg.useLora = true;
    auto qlora = std::make_unique<MoeLlm>(qlora_cfg);
    initializeQloraFromDense(*qlora, dense);
    return qlora;
}

}  // namespace ftsim
