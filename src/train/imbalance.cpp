#include "train/imbalance.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "data/batching.hpp"

namespace ftsim {

ExpertLoadProfile
measureExpertLoad(MoeLlm& model, const Dataset& dataset,
                  std::size_t batch_size, std::size_t limit)
{
    NoGradGuard guard;
    const std::size_t count =
        limit == 0 ? dataset.size() : std::min(limit, dataset.size());
    if (count == 0)
        fatal("measureExpertLoad: empty dataset");

    model.resetRouterStats();
    for (const Batch& batch :
         sequentialBatches(dataset, batch_size, count)) {
        (void)model.logits(batch.ids, batch.batchSize, batch.seqLen);
    }

    auto routers = model.routers();
    if (routers.empty())
        fatal("measureExpertLoad: model has no routers");
    const std::size_t n_experts = routers.front()->numExperts();

    ExpertLoadProfile profile;
    profile.numQueries = count;
    profile.avgTokensPerQuery.assign(n_experts, 0.0);
    for (Router* r : routers) {
        const auto& counts = r->cumulativeCounts();
        for (std::size_t e = 0; e < n_experts; ++e)
            profile.avgTokensPerQuery[e] +=
                static_cast<double>(counts[e]);
    }
    // Average over layers, normalize per query.
    const double denom = static_cast<double>(routers.size()) *
                         static_cast<double>(count);
    for (double& v : profile.avgTokensPerQuery)
        v /= denom;
    profile.varianceAcrossExperts = variance(profile.avgTokensPerQuery);
    return profile;
}

}  // namespace ftsim
