#ifndef FTSIM_TRAIN_OPTIMIZER_HPP
#define FTSIM_TRAIN_OPTIMIZER_HPP

/**
 * @file
 * Optimizers for the training substrate.
 *
 * AdamW is what the paper's LLaMA-Factory setup uses (lr 5e-5); SGD is
 * kept as a baseline and for tests. The optimizer's per-parameter state
 * size is also what the GPU simulator's memory model charges for
 * optimizer state, so the state layout here documents that accounting.
 */

#include <cstddef>
#include <vector>

#include "tensor/tensor.hpp"

namespace ftsim {

/** Base class: owns the parameter list and the update hook. */
class Optimizer {
  public:
    virtual ~Optimizer() = default;

    /** Applies one update from the accumulated gradients. */
    virtual void step() = 0;

    /** Zeroes every parameter gradient. */
    void zeroGrad();

    /** Sets the learning rate used by subsequent steps. */
    void setLearningRate(Scalar lr) { lr_ = lr; }

    /** Current learning rate. */
    Scalar learningRate() const { return lr_; }

    /** Number of parameter tensors under management. */
    std::size_t numParams() const { return params_.size(); }

    /** Total scalar elements under management. */
    std::size_t numElements() const;

  protected:
    Optimizer(std::vector<Tensor> params, Scalar lr);

    std::vector<Tensor> params_;
    Scalar lr_;
};

/** Plain SGD with optional momentum. */
class Sgd : public Optimizer {
  public:
    Sgd(std::vector<Tensor> params, Scalar lr, Scalar momentum = 0.0);

    void step() override;

  private:
    Scalar momentum_;
    std::vector<std::vector<Scalar>> velocity_;
};

/** AdamW (decoupled weight decay), the paper's fine-tuning optimizer. */
class AdamW : public Optimizer {
  public:
    AdamW(std::vector<Tensor> params, Scalar lr = 5e-5,
          Scalar beta1 = 0.9, Scalar beta2 = 0.999, Scalar eps = 1e-8,
          Scalar weight_decay = 0.0);

    void step() override;

    /** Steps taken so far (bias-correction counter). */
    std::size_t stepCount() const { return t_; }

  private:
    Scalar beta1_;
    Scalar beta2_;
    Scalar eps_;
    Scalar weightDecay_;
    std::size_t t_ = 0;
    std::vector<std::vector<Scalar>> m_;
    std::vector<std::vector<Scalar>> v_;
};

/** Learning-rate schedule: linear warmup then cosine decay to a floor. */
class LrSchedule {
  public:
    /**
     * @param base_lr peak learning rate.
     * @param warmup_steps linear ramp length (0 = none).
     * @param total_steps horizon of the cosine decay.
     * @param floor_fraction final lr as a fraction of base (e.g. 0.1).
     */
    LrSchedule(Scalar base_lr, std::size_t warmup_steps,
               std::size_t total_steps, Scalar floor_fraction = 0.0);

    /** Learning rate at (0-based) step @p step. */
    Scalar lrAt(std::size_t step) const;

  private:
    Scalar baseLr_;
    std::size_t warmupSteps_;
    std::size_t totalSteps_;
    Scalar floor_;
};

}  // namespace ftsim

#endif  // FTSIM_TRAIN_OPTIMIZER_HPP
