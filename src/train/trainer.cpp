#include "train/trainer.hpp"

#include <chrono>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void
StageTimes::operator+=(const StageTimes& other)
{
    forward += other.forward;
    backward += other.backward;
    optimizer += other.optimizer;
}

Trainer::Trainer(MoeLlm& model, Optimizer& optimizer,
                 const TrainerOptions& options)
    : model_(model),
      optimizer_(optimizer),
      options_(options),
      rng_(options.seed)
{
    if (options_.batchSize == 0)
        fatal("Trainer: zero batch size");
}

StepStats
Trainer::trainStep(const Batch& batch)
{
    StepStats stats;
    stats.numQueries = batch.numQueries;
    stats.numTokens = batch.batchSize * batch.seqLen;

    // Forward stage.
    auto t0 = Clock::now();
    Tensor loss = model_.loss(batch.ids, batch.targets, batch.batchSize,
                              batch.seqLen, kIgnoreIndex);
    stats.times.forward = secondsSince(t0);
    stats.loss = loss.item();

    // Backward stage.
    t0 = Clock::now();
    optimizer_.zeroGrad();
    loss.backward();
    stats.times.backward = secondsSince(t0);

    // Optimizer stage.
    t0 = Clock::now();
    optimizer_.step();
    stats.times.optimizer = secondsSince(t0);

    return stats;
}

EpochStats
Trainer::trainEpoch(const Dataset& dataset)
{
    EpochStats epoch;
    auto batches = epochBatches(dataset, options_.batchSize, rng_);
    if (options_.maxBatchesPerEpoch > 0 &&
        batches.size() > options_.maxBatchesPerEpoch)
        batches.resize(options_.maxBatchesPerEpoch);

    double loss_sum = 0.0;
    for (const Batch& batch : batches) {
        StepStats step = trainStep(batch);
        loss_sum += step.loss;
        epoch.times += step.times;
        epoch.numQueries += step.numQueries;
        ++epoch.steps;
    }
    if (epoch.steps > 0)
        epoch.meanLoss = loss_sum / static_cast<double>(epoch.steps);
    const double total = epoch.times.total();
    if (total > 0.0)
        epoch.queriesPerSecond =
            static_cast<double>(epoch.numQueries) / total;
    return epoch;
}

std::vector<EpochStats>
Trainer::train(const Dataset& dataset, std::size_t epochs)
{
    std::vector<EpochStats> out;
    out.reserve(epochs);
    for (std::size_t e = 0; e < epochs; ++e)
        out.push_back(trainEpoch(dataset));
    return out;
}

EvalResult
evaluateExactMatch(MoeLlm& model, const Dataset& dataset,
                   std::size_t batch_size, std::size_t limit)
{
    NoGradGuard guard;
    EvalResult result;
    const std::size_t count =
        limit == 0 ? dataset.size() : std::min(limit, dataset.size());
    auto batches = sequentialBatches(dataset, batch_size, count);

    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (const Batch& batch : batches) {
        Tensor logits =
            model.logits(batch.ids, batch.batchSize, batch.seqLen);
        Tensor loss = crossEntropy(logits, batch.targets, kIgnoreIndex);
        loss_sum += loss.item() * static_cast<double>(batch.numQueries);
        std::vector<int> preds = argmaxLastDim(logits);
        for (std::size_t b = 0; b < batch.batchSize; ++b) {
            bool all_match = true;
            bool any_label = false;
            for (std::size_t t = 0; t < batch.seqLen; ++t) {
                const std::size_t i = b * batch.seqLen + t;
                if (batch.targets[i] == kIgnoreIndex)
                    continue;
                any_label = true;
                if (preds[i] != batch.targets[i]) {
                    all_match = false;
                    break;
                }
            }
            if (any_label && all_match)
                ++correct;
        }
        result.numQueries += batch.numQueries;
    }
    if (result.numQueries > 0) {
        result.exactMatch = static_cast<double>(correct) /
                            static_cast<double>(result.numQueries);
        result.meanLoss =
            loss_sum / static_cast<double>(result.numQueries);
    }
    return result;
}

}  // namespace ftsim
