#ifndef FTSIM_TRAIN_PRETRAIN_HPP
#define FTSIM_TRAIN_PRETRAIN_HPP

/**
 * @file
 * Language-model pre-training for the miniature models.
 *
 * The paper fine-tunes *pretrained* checkpoints. This helper stands in
 * for that checkpoint: it trains a dense model with the plain next-token
 * objective over every position of a corpus (not just answer spans), so
 * the model enters fine-tuning with meaningful token representations —
 * after which makePretrainedQlora() quantizes it into the QLoRA setup
 * the paper uses for Mixtral.
 */

#include <cstdint>
#include <memory>

#include "data/dataset.hpp"
#include "models/model.hpp"

namespace ftsim {

/** Summary of a pre-training run. */
struct PretrainResult {
    double initialLoss = 0.0;
    double finalLoss = 0.0;
    std::size_t steps = 0;
};

/**
 * Trains @p model with the full-sequence LM objective for @p steps
 * AdamW steps over shuffled batches of @p corpus.
 *
 * @param exclude_answers when true (default), the ground-truth answer
 *        spans carry no loss: the model learns token statistics and
 *        representations but not the task mapping — so, like the paper's
 *        pretrained checkpoints, it starts fine-tuning with low task
 *        accuracy (§IV-A: "pre-trained models show low accuracy").
 */
PretrainResult pretrainLm(MoeLlm& model, const Dataset& corpus,
                          std::size_t steps, std::size_t batch_size,
                          double lr = 3e-3, std::uint64_t seed = 7,
                          bool exclude_answers = true);

/**
 * The full paper flow for the QLoRA model: builds a dense twin of
 * @p cfg, pre-trains it on @p corpus, then quantizes it into a QLoRA
 * model (cfg.useLora is forced true on the result).
 *
 * @return the ready-to-fine-tune QLoRA model.
 */
std::unique_ptr<MoeLlm> makePretrainedQlora(const MiniModelConfig& cfg,
                                            const Dataset& corpus,
                                            std::size_t pretrain_steps,
                                            std::size_t batch_size,
                                            double lr = 3e-3,
                                            bool exclude_answers = true);

}  // namespace ftsim

#endif  // FTSIM_TRAIN_PRETRAIN_HPP
