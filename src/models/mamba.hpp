#ifndef FTSIM_MODELS_MAMBA_HPP
#define FTSIM_MODELS_MAMBA_HPP

/**
 * @file
 * Selective state-space sequence mixer (the BlackMamba-style layer).
 *
 * A faithful-in-structure miniature of the Mamba block: input projection
 * splitting into value and gate paths, a causal depthwise convolution, an
 * input-dependent (selective) decay, a linear-time recurrence over the
 * sequence, and a gated output projection. The recurrence uses the fused
 * selectiveScan op whose backward is a reverse-time scan — the same
 * structure real Mamba CUDA kernels implement.
 */

#include "nn/layers.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** Mamba-style selective SSM layer. */
class MambaLayer : public Module {
  public:
    /**
     * @param d_model residual width.
     * @param d_inner expanded inner width (typically 2x d_model).
     * @param conv_k depthwise convolution taps (typically 4).
     */
    MambaLayer(std::size_t d_model, std::size_t d_inner,
               std::size_t conv_k, Rng& rng);

    /** Applies the layer to [B, T, d_model] input. */
    Tensor forward(const Tensor& x) const;

    /** Inner width. */
    std::size_t dInner() const { return dInner_; }

    /** Projection accessors (weight-transfer plumbing). */
    Linear& inProj() { return inProj_; }
    /** Decay projection. */
    Linear& aProj() { return aProj_; }
    /** Output projection. */
    Linear& outProj() { return outProj_; }
    /** Depthwise conv taps. */
    Tensor convWeight() { return convW_; }

  private:
    std::size_t dInner_;
    Linear inProj_;   ///< d_model -> 2*d_inner (value and gate paths).
    Tensor convW_;    ///< [conv_k, d_inner] depthwise causal taps.
    Linear aProj_;    ///< d_inner -> d_inner selective-decay projection.
    Linear outProj_;  ///< d_inner -> d_model.
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_MAMBA_HPP
