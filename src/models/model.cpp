#include "models/model.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

DecoderBlock::DecoderBlock(const MiniModelConfig& cfg, Rng& rng)
    : backbone_(cfg.backbone), norm1_(cfg.dModel), norm2_(cfg.dModel)
{
    registerChild("input_norm", &norm1_);
    registerChild("post_mixer_norm", &norm2_);
    if (backbone_ == BackboneKind::Attention) {
        attention_ = std::make_unique<CausalSelfAttention>(
            cfg.dModel, cfg.nHeads, rng, /*frozen=*/cfg.useLora);
        registerChild("self_attn", attention_.get());
    } else {
        mamba_ = std::make_unique<MambaLayer>(cfg.dModel, cfg.dInner,
                                              cfg.convK, rng);
        registerChild("mamba", mamba_.get());
    }
    moe_ = std::make_unique<MoELayer>(cfg, rng);
    registerChild("moe", moe_.get());
    if (cfg.useLora) {
        // QLoRA fine-tuning trains only the adapters; the norms are part
        // of the frozen base model.
        norm1_.freeze();
        norm2_.freeze();
    }
}

Tensor
DecoderBlock::forward(const Tensor& x, std::size_t top_k)
{
    // Pre-norm residual around the sequence mixer.
    Tensor mixed = (backbone_ == BackboneKind::Attention)
                       ? attention_->forward(norm1_.forward(x))
                       : mamba_->forward(norm1_.forward(x));
    Tensor h = add(x, mixed);

    // Pre-norm residual around the MoE; MoE operates on flat tokens.
    const Shape& s = h.shape();
    Tensor flat = reshape(norm2_.forward(h), {s[0] * s[1], s[2]});
    Tensor moe_out = moe_->forward(flat, top_k);
    return add(h, reshape(moe_out, s));
}

MoeLlm::MoeLlm(const MiniModelConfig& cfg)
    : cfg_(cfg), topK_(cfg.topK), finalNorm_(cfg.dModel)
{
    if (cfg.topK == 0 || cfg.topK > cfg.nExperts)
        fatal("MoeLlm: topK out of range");
    Rng rng(cfg.seed);
    embedding_ = std::make_unique<Embedding>(cfg.vocab, cfg.dModel, rng);
    registerChild("embed_tokens", embedding_.get());
    for (std::size_t l = 0; l < cfg.nLayers; ++l) {
        blocks_.push_back(std::make_unique<DecoderBlock>(cfg, rng));
        registerChild(strCat("layers.", l), blocks_.back().get());
    }
    registerChild("final_norm", &finalNorm_);
    head_ = std::make_unique<Linear>(cfg.dModel, cfg.vocab, rng);
    registerChild("lm_head", head_.get());
    if (cfg.useLora) {
        embedding_->freeze();
        head_->freeze();
        finalNorm_.freeze();
    }
}

Tensor
MoeLlm::logits(const std::vector<int>& ids, std::size_t batch,
               std::size_t seq_len)
{
    if (ids.size() != batch * seq_len)
        fatal(strCat("MoeLlm::logits: got ", ids.size(), " ids for [",
                     batch, ", ", seq_len, "]"));
    Tensor h = embedding_->forward(ids, {batch, seq_len});
    for (auto& block : blocks_)
        h = block->forward(h, topK_);
    h = finalNorm_.forward(h);
    Tensor out = head_->forward(h);  // [B, T, V]
    return reshape(out, {batch * seq_len, cfg_.vocab});
}

Tensor
MoeLlm::loss(const std::vector<int>& ids, const std::vector<int>& targets,
             std::size_t batch, std::size_t seq_len, int ignore_index)
{
    Tensor lm_loss =
        crossEntropy(logits(ids, batch, seq_len), targets, ignore_index);
    if (cfg_.auxLossWeight > 0.0) {
        for (auto& block : blocks_) {
            const Tensor& aux = block->moe().lastAuxLoss();
            if (aux.defined())
                lm_loss = add(lm_loss, aux);
        }
    }
    return lm_loss;
}

DecoderBlock&
MoeLlm::block(std::size_t i)
{
    if (i >= blocks_.size())
        fatal(strCat("MoeLlm::block: index ", i, " out of range"));
    return *blocks_[i];
}

std::vector<Router*>
MoeLlm::routers()
{
    std::vector<Router*> out;
    out.reserve(blocks_.size());
    for (auto& block : blocks_)
        out.push_back(&block->moe().router());
    return out;
}

void
MoeLlm::resetRouterStats()
{
    for (Router* r : routers())
        r->resetStats();
}

void
MoeLlm::setTopK(std::size_t top_k)
{
    if (top_k == 0 || top_k > cfg_.nExperts)
        fatal(strCat("MoeLlm::setTopK: ", top_k, " out of range"));
    topK_ = top_k;
}

}  // namespace ftsim
