#ifndef FTSIM_MODELS_MODEL_HPP
#define FTSIM_MODELS_MODEL_HPP

/**
 * @file
 * The miniature MoE decoder language model (Fig. 1 of the paper).
 *
 * Stacks decoder blocks of (RMSNorm -> mixer -> residual, RMSNorm -> MoE
 * -> residual) where the mixer is causal attention (Mixtral-style) or a
 * selective SSM (BlackMamba-style), followed by a final norm and LM head.
 */

#include <memory>
#include <vector>

#include "models/attention.hpp"
#include "models/config.hpp"
#include "models/mamba.hpp"
#include "models/moe.hpp"
#include "nn/layers.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

/** One decoder block: mixer + MoE with pre-norm residuals. */
class DecoderBlock : public Module {
  public:
    DecoderBlock(const MiniModelConfig& cfg, Rng& rng);

    /** Applies the block to [B, T, D]; top_k selects MoE sparsity. */
    Tensor forward(const Tensor& x, std::size_t top_k);

    /** This block's MoE layer (router statistics live inside). */
    MoELayer& moe() { return *moe_; }

    /** Mixer accessors (null when the other backbone is active). */
    CausalSelfAttention* attention() { return attention_.get(); }
    /** Mamba mixer (null for attention backbones). */
    MambaLayer* mambaLayer() { return mamba_.get(); }
    /** Pre-mixer norm. */
    RMSNorm& inputNorm() { return norm1_; }
    /** Pre-MoE norm. */
    RMSNorm& postMixerNorm() { return norm2_; }

  private:
    BackboneKind backbone_;
    RMSNorm norm1_;
    RMSNorm norm2_;
    std::unique_ptr<CausalSelfAttention> attention_;
    std::unique_ptr<MambaLayer> mamba_;
    std::unique_ptr<MoELayer> moe_;
};

/** The full miniature MoE language model. */
class MoeLlm : public Module {
  public:
    explicit MoeLlm(const MiniModelConfig& cfg);

    /**
     * Computes logits for a [B, T] batch of token ids (row-major).
     * @return [B*T, vocab] logits.
     */
    Tensor logits(const std::vector<int>& ids, std::size_t batch,
                  std::size_t seq_len);

    /**
     * Next-token cross-entropy plus any MoE auxiliary losses.
     * @param targets [B*T] labels aligned with positions (callers supply
     *        already-shifted labels); ignore_index positions are skipped.
     */
    Tensor loss(const std::vector<int>& ids, const std::vector<int>& targets,
                std::size_t batch, std::size_t seq_len,
                int ignore_index = -1);

    /** Routers of every layer, for load-imbalance studies (Fig. 11). */
    std::vector<Router*> routers();

    /** Resets router statistics across all layers. */
    void resetRouterStats();

    /** Active experts per token used by forward passes. */
    std::size_t topK() const { return topK_; }

    /**
     * Overrides MoE sparsity (e.g., nExperts for dense fine-tuning).
     * Fatal if out of range.
     */
    void setTopK(std::size_t top_k);

    /** The construction-time configuration. */
    const MiniModelConfig& config() const { return cfg_; }

    /** Decoder block accessor. */
    DecoderBlock& block(std::size_t i);

    /** Number of decoder blocks. */
    std::size_t numBlocks() const { return blocks_.size(); }

    /** Token embedding (weight-transfer plumbing). */
    Embedding& embeddingLayer() { return *embedding_; }

    /** LM head. */
    Linear& headLayer() { return *head_; }

    /** Final norm. */
    RMSNorm& finalNormLayer() { return finalNorm_; }

  private:
    MiniModelConfig cfg_;
    std::size_t topK_;
    std::unique_ptr<Embedding> embedding_;
    std::vector<std::unique_ptr<DecoderBlock>> blocks_;
    RMSNorm finalNorm_;
    std::unique_ptr<Linear> head_;
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_MODEL_HPP
