#include "models/config.hpp"

namespace ftsim {

MiniModelConfig
MiniModelConfig::miniMixtral()
{
    MiniModelConfig cfg;
    cfg.backbone = BackboneKind::Attention;
    cfg.expertKind = ExpertKind::SwiGLU;
    cfg.vocab = 64;
    cfg.dModel = 64;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 128;
    cfg.nExperts = 8;
    cfg.topK = 2;
    cfg.useLora = true;
    cfg.loraRank = 4;
    cfg.seed = 20240808;
    return cfg;
}

MiniModelConfig
MiniModelConfig::miniBlackMamba()
{
    MiniModelConfig cfg;
    cfg.backbone = BackboneKind::Mamba;
    cfg.expertKind = ExpertKind::Gelu;
    cfg.vocab = 64;
    // The paper's BlackMamba is ~17x smaller than Mixtral; keep the
    // miniature version smaller than mini-Mixtral in the same spirit.
    cfg.dModel = 40;
    cfg.nLayers = 2;
    cfg.dFf = 80;
    cfg.dInner = 80;
    cfg.convK = 4;
    cfg.nExperts = 8;
    cfg.topK = 2;
    cfg.useLora = false;  // Full fine-tuning, as in the paper.
    cfg.seed = 20240809;
    return cfg;
}

}  // namespace ftsim
