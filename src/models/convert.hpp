#ifndef FTSIM_MODELS_CONVERT_HPP
#define FTSIM_MODELS_CONVERT_HPP

/**
 * @file
 * Pretrained-dense -> QLoRA model conversion.
 *
 * The paper fine-tunes a *pretrained* Mixtral with QLoRA: the base
 * weights come from pre-training, get quantized to 4 bits, and only
 * low-rank adapters train. This module reproduces that flow for the
 * miniature models: train a dense twin first, then initialize a QLoRA
 * model from it — frozen backbone weights are copied, MoE base matrices
 * are re-quantized from the dense weights, and the LoRA adapters start
 * as the usual exact no-op.
 */

#include "models/model.hpp"

namespace ftsim {

/**
 * Initializes @p qlora (built with useLora = true) from the pretrained
 * @p dense twin (same architecture dims, useLora = false): copies
 * embeddings, norms, attention/mamba mixers and the LM head verbatim,
 * and re-quantizes every MoE base matrix (experts + router) from the
 * dense weights. Fatal on any configuration mismatch.
 */
void initializeQloraFromDense(MoeLlm& qlora, MoeLlm& dense);

}  // namespace ftsim

#endif  // FTSIM_MODELS_CONVERT_HPP
