#ifndef FTSIM_MODELS_SPEC_HPP
#define FTSIM_MODELS_SPEC_HPP

/**
 * @file
 * Full-size model descriptors (Table I of the paper).
 *
 * The miniature models in model.hpp are for *training* studies; these
 * specs describe the real Mixtral-8x7B and BlackMamba-2.8B dimensions and
 * are what the GPU simulator lowers into kernel workloads. Parameter
 * counts and weight memory are closed-form functions of the spec so that
 * Table I's numbers (47B / 23.35 GB, 2.8B / 5.6 GB) are derived, not
 * hard-coded.
 */

#include <cstddef>
#include <string>

#include "models/config.hpp"

namespace ftsim {

/** Fine-tuning strategy applied to a full-size model. */
enum class FineTuneStrategy : std::uint8_t {
    FullFineTune,  ///< All weights updated (BlackMamba in the paper).
    QLoRA,         ///< 4-bit frozen base + LoRA adapters on MoE layers.
};

/** Architecture descriptor for a full-size MoE LLM. */
struct ModelSpec {
    std::string name;
    BackboneKind backbone = BackboneKind::Attention;
    ExpertKind expertKind = ExpertKind::SwiGLU;

    std::size_t nLayers = 0;     ///< Decoder blocks.
    std::size_t dModel = 0;      ///< Residual width.
    std::size_t nHeads = 0;      ///< Attention heads.
    std::size_t nKvHeads = 0;    ///< GQA key/value heads.
    std::size_t dFf = 0;         ///< Expert hidden width.
    std::size_t nExperts = 0;    ///< Experts per MoE layer.
    std::size_t topKSparse = 2;  ///< Active experts in sparse mode.
    std::size_t vocab = 0;

    std::size_t dInner = 0;      ///< Mamba inner width.
    std::size_t dState = 16;     ///< Mamba SSM state dim.
    std::size_t convK = 4;       ///< Mamba conv taps.

    FineTuneStrategy strategy = FineTuneStrategy::QLoRA;
    std::size_t loraRank = 16;   ///< Adapter rank (paper: 16).
    /** Bytes/weight as stored on GPU (0.5 = 4-bit, 2 = fp16). */
    double bytesPerParam = 2.0;

    // ----- Derived quantities (all closed-form) -----

    /** Sequence-mixer (attention or mamba) parameters per layer. */
    std::size_t mixerParamsPerLayer() const;

    /** Parameters of a single expert FFN. */
    std::size_t expertParams() const;

    /** Router parameters per MoE layer. */
    std::size_t routerParamsPerLayer() const;

    /** All MoE parameters per layer (experts + router). */
    std::size_t moeParamsPerLayer() const;

    /** Norm parameters per layer. */
    std::size_t normParamsPerLayer() const;

    /** Embedding + LM-head parameters. */
    std::size_t embeddingParams() const;

    /** Total parameter count. */
    std::size_t totalParams() const;

    /** Trainable parameters under the configured strategy. */
    std::size_t trainableParams() const;

    /** LoRA adapter parameters per adapted projection pair. */
    std::size_t loraParamsPerProjection(std::size_t in_dim,
                                        std::size_t out_dim) const;

    /** GPU-resident weight memory in bytes (Table I column 2). */
    double weightMemoryBytes() const;

    /**
     * Optimizer state bytes (AdamW: two fp32 moments per trainable
     * parameter; gradients are accounted separately).
     */
    double optimizerStateBytes() const;

    /** Experts active per token in the given mode. */
    std::size_t activeExperts(bool sparse) const;

    /** Fraction of experts active (the paper's "sparsity" knob). */
    double sparsity(bool sparse) const;

    /**
     * Canonical cache identity: every field that affects the lowered
     * kernel workload, serialized. Two specs with equal fingerprints
     * compile to bit-identical step plans, so plan registries and
     * serving layers key on this (a tweaked copy never aliases a
     * preset, same contract as the planner's GPU fingerprint).
     */
    std::string fingerprint() const;

    // ----- The two models of the paper (Table I) -----

    /** Mixtral-8x7B: 32 layers, 8 experts, SwiGLU, QLoRA 4-bit. */
    static ModelSpec mixtral8x7b();

    /** BlackMamba-2.8B: 18 layers, 8 experts, GELU, full fp16 FT. */
    static ModelSpec blackMamba2p8b();
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_SPEC_HPP
