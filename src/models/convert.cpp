#include "models/convert.hpp"

#include "common/logging.hpp"

namespace ftsim {

namespace {

/** Copies tensor values between same-shaped parameter tensors. */
void
copyValues(const Tensor& dst, const Tensor& src, const char* what)
{
    if (!dst.defined() || !src.defined() || dst.shape() != src.shape())
        fatal(strCat("initializeQloraFromDense: shape mismatch at ",
                     what));
    dst.impl()->data = src.data();
}

/** Copies a plain Linear layer (weight, optional bias). */
void
copyLinear(Linear& dst, Linear& src, const char* what)
{
    copyValues(dst.weight(), src.weight(), what);
    if (dst.bias().defined() != src.bias().defined())
        fatal(strCat("initializeQloraFromDense: bias mismatch at ", what));
    if (dst.bias().defined())
        copyValues(dst.bias(), src.bias(), what);
}

/** Re-quantizes a LoRA-wrapped base from a dense projection. */
void
requantizeFromDense(LinearBase& qlora_proj, LinearBase& dense_proj,
                    const char* what)
{
    auto* lora = dynamic_cast<LoRALinear*>(&qlora_proj);
    if (lora == nullptr)
        fatal(strCat("initializeQloraFromDense: ", what,
                     " is not a LoRA projection"));
    auto* quant = dynamic_cast<QuantLinear*>(&lora->baseLayer());
    if (quant == nullptr)
        fatal(strCat("initializeQloraFromDense: ", what,
                     " base is not quantized"));
    auto* dense = dynamic_cast<DenseLinear*>(&dense_proj);
    if (dense == nullptr)
        fatal(strCat("initializeQloraFromDense: dense twin of ", what,
                     " is not a DenseLinear"));
    quant->requantize(dense->weight());
}

void
copyNorm(RMSNorm& dst, RMSNorm& src, const char* what)
{
    auto d = dst.namedParameters();
    auto s = src.namedParameters();
    if (d.size() != 1 || s.size() != 1)
        panic("copyNorm: unexpected RMSNorm parameter layout");
    copyValues(d[0].tensor, s[0].tensor, what);
}

}  // namespace

void
initializeQloraFromDense(MoeLlm& qlora, MoeLlm& dense)
{
    const MiniModelConfig& qc = qlora.config();
    const MiniModelConfig& dc = dense.config();
    if (!qc.useLora || dc.useLora)
        fatal("initializeQloraFromDense: expected (qlora, dense) pair");
    if (qc.dModel != dc.dModel || qc.nLayers != dc.nLayers ||
        qc.dFf != dc.dFf || qc.nExperts != dc.nExperts ||
        qc.vocab != dc.vocab || qc.backbone != dc.backbone ||
        qc.expertKind != dc.expertKind)
        fatal("initializeQloraFromDense: architecture mismatch");

    copyValues(qlora.embeddingLayer().table(),
               dense.embeddingLayer().table(), "embedding");
    copyLinear(qlora.headLayer(), dense.headLayer(), "lm_head");
    copyNorm(qlora.finalNormLayer(), dense.finalNormLayer(),
             "final_norm");

    for (std::size_t l = 0; l < qc.nLayers; ++l) {
        DecoderBlock& qb = qlora.block(l);
        DecoderBlock& db = dense.block(l);
        copyNorm(qb.inputNorm(), db.inputNorm(), "input_norm");
        copyNorm(qb.postMixerNorm(), db.postMixerNorm(),
                 "post_mixer_norm");

        if (qc.backbone == BackboneKind::Attention) {
            copyLinear(qb.attention()->qProj(), db.attention()->qProj(),
                       "q_proj");
            copyLinear(qb.attention()->kProj(), db.attention()->kProj(),
                       "k_proj");
            copyLinear(qb.attention()->vProj(), db.attention()->vProj(),
                       "v_proj");
            copyLinear(qb.attention()->oProj(), db.attention()->oProj(),
                       "o_proj");
        } else {
            copyLinear(qb.mambaLayer()->inProj(),
                       db.mambaLayer()->inProj(), "in_proj");
            copyLinear(qb.mambaLayer()->aProj(), db.mambaLayer()->aProj(),
                       "a_proj");
            copyLinear(qb.mambaLayer()->outProj(),
                       db.mambaLayer()->outProj(), "out_proj");
            copyValues(qb.mambaLayer()->convWeight(),
                       db.mambaLayer()->convWeight(), "conv1d");
        }

        MoELayer& qm = qb.moe();
        MoELayer& dm = db.moe();
        requantizeFromDense(qm.router().gate(), dm.router().gate(),
                            "router");
        for (std::size_t e = 0; e < qm.numExperts(); ++e) {
            Expert& qe = qm.expert(e);
            Expert& de = dm.expert(e);
            for (std::size_t p = 0; p < qe.numProjections(); ++p)
                requantizeFromDense(qe.projection(p), de.projection(p),
                                    "expert projection");
        }
    }
}

}  // namespace ftsim
