#ifndef FTSIM_MODELS_CONFIG_HPP
#define FTSIM_MODELS_CONFIG_HPP

/**
 * @file
 * Configuration for the miniature trainable MoE models.
 *
 * These are the architectures that actually train on the CPU substrate
 * to reproduce the paper's accuracy (Fig. 3) and load-imbalance (Fig. 11)
 * results. They keep the *structure* of Mixtral / BlackMamba — decoder
 * blocks of (norm, mixer, norm, top-k MoE) with SwiGLU or GELU experts —
 * at a width/depth that trains in seconds.
 */

#include <cstddef>
#include <cstdint>

#include "tensor/tensor.hpp"

namespace ftsim {

/** Sequence-mixing backbone of a decoder block. */
enum class BackboneKind : std::uint8_t {
    Attention,  ///< Causal self-attention (Mixtral-style).
    Mamba,      ///< Selective state-space layer (BlackMamba-style).
};

/** Expert feed-forward architecture (Fig. 7 of the paper). */
enum class ExpertKind : std::uint8_t {
    SwiGLU,  ///< w2(silu(w1 x) * w3 x) — Mixtral experts.
    Gelu,    ///< w2(gelu(w1 x)) — BlackMamba experts.
};

/** Hyper-parameters of a miniature MoE language model. */
struct MiniModelConfig {
    std::size_t vocab = 64;      ///< Token vocabulary size.
    std::size_t dModel = 48;     ///< Residual stream width.
    std::size_t nLayers = 2;     ///< Decoder block count.
    std::size_t nHeads = 4;      ///< Attention heads (attention backbone).
    std::size_t dFf = 96;        ///< Expert hidden width.
    std::size_t nExperts = 8;    ///< Experts per MoE layer (paper: 8).
    std::size_t topK = 2;        ///< Active experts/token (8 == dense).
    BackboneKind backbone = BackboneKind::Attention;
    ExpertKind expertKind = ExpertKind::SwiGLU;

    /** QLoRA mode: 4-bit frozen base + trainable adapters in MoE. */
    bool useLora = false;
    std::size_t loraRank = 4;    ///< Adapter rank (paper uses 16 at scale).
    Scalar loraAlpha = 8.0;      ///< Adapter scale numerator.

    std::size_t dInner = 96;     ///< Mamba inner width (mamba backbone).
    std::size_t convK = 4;       ///< Mamba depthwise conv taps.

    /** Switch-style load-balancing auxiliary loss weight (0 = off). */
    Scalar auxLossWeight = 0.0;

    std::uint64_t seed = 1234;   ///< Weight-init seed.

    /** Miniature Mixtral: attention backbone, SwiGLU experts, QLoRA. */
    static MiniModelConfig miniMixtral();

    /** Miniature BlackMamba: mamba backbone, GELU experts, full FT. */
    static MiniModelConfig miniBlackMamba();
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_CONFIG_HPP
