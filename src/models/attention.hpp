#ifndef FTSIM_MODELS_ATTENTION_HPP
#define FTSIM_MODELS_ATTENTION_HPP

/**
 * @file
 * Multi-head causal self-attention (the Mixtral-style sequence mixer).
 */

#include "nn/layers.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** Multi-head causal self-attention with full (MHA) head layout. */
class CausalSelfAttention : public Module {
  public:
    /**
     * @param d_model residual width (must divide by num_heads).
     * @param frozen when true (QLoRA mode) the projections do not train —
     *        the paper adapts only the MoE layers of Mixtral.
     */
    CausalSelfAttention(std::size_t d_model, std::size_t num_heads,
                        Rng& rng, bool frozen = false);

    /** Applies attention to [B, T, d_model] input. */
    Tensor forward(const Tensor& x) const;

    /** Head count. */
    std::size_t numHeads() const { return numHeads_; }

    /** Projection accessors (weight-transfer plumbing). */
    Linear& qProj() { return q_; }
    /** Key projection. */
    Linear& kProj() { return k_; }
    /** Value projection. */
    Linear& vProj() { return v_; }
    /** Output projection. */
    Linear& oProj() { return o_; }

  private:
    std::size_t numHeads_;
    std::size_t dHead_;
    Linear q_;
    Linear k_;
    Linear v_;
    Linear o_;
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_ATTENTION_HPP
