#include "models/spec.hpp"

#include "common/logging.hpp"

namespace ftsim {

std::size_t
ModelSpec::mixerParamsPerLayer() const
{
    if (backbone == BackboneKind::Attention) {
        // GQA attention: q and o are [d, d]; k and v are [d, d_kv].
        const std::size_t d_kv = dModel * nKvHeads / nHeads;
        return 2 * dModel * dModel + 2 * dModel * d_kv;
    }
    // Mamba: in_proj (d -> 2*di), out_proj (di -> d), depthwise conv,
    // selective projections (B, C, dt) against the SSM state, A and D.
    return 2 * dModel * dInner    // in_proj
           + dInner * dModel     // out_proj
           + convK * dInner      // conv1d
           + 3 * dInner * dState // B/C/dt selective projections
           + 2 * dInner;         // A diagonal + D skip
}

std::size_t
ModelSpec::expertParams() const
{
    if (expertKind == ExpertKind::SwiGLU)
        return 3 * dModel * dFf;  // w1, w2, w3 (Fig. 7 top).
    return 2 * dModel * dFf;      // w1, w2 (Fig. 7 bottom).
}

std::size_t
ModelSpec::routerParamsPerLayer() const
{
    return dModel * nExperts;
}

std::size_t
ModelSpec::moeParamsPerLayer() const
{
    return nExperts * expertParams() + routerParamsPerLayer();
}

std::size_t
ModelSpec::normParamsPerLayer() const
{
    return 2 * dModel;  // Input norm + post-mixer norm (RMSNorm gains).
}

std::size_t
ModelSpec::embeddingParams() const
{
    return 2 * vocab * dModel;  // Untied input embedding + LM head.
}

std::size_t
ModelSpec::totalParams() const
{
    return nLayers * (mixerParamsPerLayer() + moeParamsPerLayer() +
                      normParamsPerLayer()) +
           embeddingParams() + dModel;  // + final norm.
}

std::size_t
ModelSpec::loraParamsPerProjection(std::size_t in_dim,
                                   std::size_t out_dim) const
{
    // A is [r, in], B is [out, r].
    return loraRank * (in_dim + out_dim);
}

std::size_t
ModelSpec::trainableParams() const
{
    if (strategy == FineTuneStrategy::FullFineTune)
        return totalParams();
    // QLoRA on the MoE layers (experts + router), per the paper.
    std::size_t per_expert =
        loraParamsPerProjection(dModel, dFf) +   // w1
        loraParamsPerProjection(dFf, dModel);    // w2
    if (expertKind == ExpertKind::SwiGLU)
        per_expert += loraParamsPerProjection(dModel, dFf);  // w3
    std::size_t per_layer = nExperts * per_expert +
                            loraParamsPerProjection(dModel, nExperts);
    return nLayers * per_layer;
}

double
ModelSpec::weightMemoryBytes() const
{
    return static_cast<double>(totalParams()) * bytesPerParam;
}

double
ModelSpec::optimizerStateBytes() const
{
    // AdamW keeps two fp32 moments per trainable parameter; gradient
    // storage is accounted separately by the memory model.
    return static_cast<double>(trainableParams()) * 8.0;
}

std::size_t
ModelSpec::activeExperts(bool sparse) const
{
    return sparse ? topKSparse : nExperts;
}

double
ModelSpec::sparsity(bool sparse) const
{
    return static_cast<double>(activeExperts(sparse)) /
           static_cast<double>(nExperts);
}

std::string
ModelSpec::fingerprint() const
{
    return strCat(name, '|', static_cast<int>(backbone), '|',
                  static_cast<int>(expertKind), '|', nLayers, '|',
                  dModel, '|', nHeads, '|', nKvHeads, '|', dFf, '|',
                  nExperts, '|', topKSparse, '|', vocab, '|', dInner,
                  '|', dState, '|', convK, '|',
                  static_cast<int>(strategy), '|', loraRank, '|',
                  strExact(bytesPerParam));
}

ModelSpec
ModelSpec::mixtral8x7b()
{
    ModelSpec spec;
    spec.name = "Mixtral-8x7B";
    spec.backbone = BackboneKind::Attention;
    spec.expertKind = ExpertKind::SwiGLU;
    spec.nLayers = 32;
    spec.dModel = 4096;
    spec.nHeads = 32;
    spec.nKvHeads = 8;
    spec.dFf = 14336;
    spec.nExperts = 8;
    spec.topKSparse = 2;
    spec.vocab = 32000;
    spec.strategy = FineTuneStrategy::QLoRA;
    spec.loraRank = 16;
    spec.bytesPerParam = 0.5;  // 4-bit NF4 base (QLoRA).
    return spec;
}

ModelSpec
ModelSpec::blackMamba2p8b()
{
    // Dimensions calibrated so the closed-form parameter count lands at
    // Table I's 2.8B (the BlackMamba release does not publish every
    // hyper-parameter; the layer structure is what matters here).
    ModelSpec spec;
    spec.name = "BlackMamba-2.8B";
    spec.backbone = BackboneKind::Mamba;
    spec.expertKind = ExpertKind::Gelu;
    spec.nLayers = 18;
    spec.dModel = 1600;
    spec.nHeads = 0;
    spec.nKvHeads = 0;
    spec.dInner = 3200;
    spec.dState = 16;
    spec.convK = 4;
    spec.dFf = 5120;
    spec.nExperts = 8;
    spec.topKSparse = 2;
    spec.vocab = 50304;
    spec.strategy = FineTuneStrategy::FullFineTune;
    spec.bytesPerParam = 2.0;  // fp16 full fine-tuning.
    return spec;
}

}  // namespace ftsim
