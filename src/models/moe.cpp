#include "models/moe.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

namespace {

/** Builds a dense or QLoRA-wrapped projection. */
std::unique_ptr<LinearBase>
makeProjection(std::size_t in_dim, std::size_t out_dim, Rng& rng,
               bool use_lora, std::size_t lora_rank, Scalar lora_alpha)
{
    if (use_lora) {
        return std::make_unique<LoRALinear>(
            std::make_unique<QuantLinear>(in_dim, out_dim, rng), lora_rank,
            lora_alpha, rng);
    }
    return std::make_unique<DenseLinear>(in_dim, out_dim, rng);
}

}  // namespace

Expert::Expert(ExpertKind kind, std::size_t d_model, std::size_t d_ff,
               Rng& rng, bool use_lora, std::size_t lora_rank,
               Scalar lora_alpha)
    : kind_(kind)
{
    w1_ = makeProjection(d_model, d_ff, rng, use_lora, lora_rank,
                         lora_alpha);
    registerChild("w1", w1_.get());
    w2_ = makeProjection(d_ff, d_model, rng, use_lora, lora_rank,
                         lora_alpha);
    registerChild("w2", w2_.get());
    if (kind_ == ExpertKind::SwiGLU) {
        w3_ = makeProjection(d_model, d_ff, rng, use_lora, lora_rank,
                             lora_alpha);
        registerChild("w3", w3_.get());
    }
}

Tensor
Expert::forward(const Tensor& x) const
{
    if (kind_ == ExpertKind::SwiGLU) {
        // Fig. 7 (top): y = w2( silu(w1 x) * (w3 x) ).
        Tensor gate = silu(w1_->forward(x));
        Tensor up = w3_->forward(x);
        return w2_->forward(mul(gate, up));
    }
    // Fig. 7 (bottom): y = w2( gelu(w1 x) ).
    return w2_->forward(gelu(w1_->forward(x)));
}

std::size_t
Expert::numProjections() const
{
    return kind_ == ExpertKind::SwiGLU ? 3 : 2;
}

LinearBase&
Expert::projection(std::size_t i)
{
    switch (i) {
      case 0:
        return *w1_;
      case 1:
        return *w2_;
      case 2:
        if (w3_)
            return *w3_;
        break;
      default:
        break;
    }
    fatal(strCat("Expert::projection: index ", i, " out of range"));
}

const LinearBase&
Expert::projection(std::size_t i) const
{
    return const_cast<Expert*>(this)->projection(i);
}

Expert&
MoELayer::expert(std::size_t i)
{
    if (i >= experts_.size())
        fatal("MoELayer::expert: index out of range");
    return *experts_[i];
}

const Expert&
MoELayer::expert(std::size_t i) const
{
    return const_cast<MoELayer*>(this)->expert(i);
}

MoELayer::MoELayer(const MiniModelConfig& cfg, Rng& rng)
{
    router_ = std::make_unique<Router>(cfg.dModel, cfg.nExperts, rng,
                                       cfg.useLora, cfg.loraRank,
                                       cfg.auxLossWeight);
    registerChild("router", router_.get());
    experts_.reserve(cfg.nExperts);
    for (std::size_t e = 0; e < cfg.nExperts; ++e) {
        experts_.push_back(std::make_unique<Expert>(
            cfg.expertKind, cfg.dModel, cfg.dFf, rng, cfg.useLora,
            cfg.loraRank, cfg.loraAlpha));
        registerChild(strCat("experts.", e), experts_.back().get());
    }
}

Tensor
MoELayer::forward(const Tensor& x, std::size_t top_k)
{
    if (x.dim() != 2)
        fatal(strCat("MoELayer::forward: expected [N, D] tokens, got ",
                     shapeToString(x.shape())));
    const std::size_t n = x.size(0);
    const std::size_t d = x.size(1);

    RoutingInfo routing = router_->route(x, top_k);
    lastAuxLoss_ = routing.auxLoss;

    // Gate weights as a flat [N*k] column for per-slot row scaling.
    Tensor flat_weights =
        reshape(routing.weights, {n * top_k});

    Tensor out;  // Accumulated expert contributions.
    for (std::size_t e = 0; e < experts_.size(); ++e) {
        // Slots (token, j) routed to expert e in this batch.
        std::vector<std::size_t> token_rows;
        std::vector<std::size_t> slot_rows;
        for (std::size_t i = 0; i < routing.experts.size(); ++i) {
            if (routing.experts[i] == static_cast<int>(e)) {
                token_rows.push_back(i / top_k);
                slot_rows.push_back(i);
            }
        }
        if (token_rows.empty())
            continue;

        // Group tokens (Fig. 12), run the expert, apply gate weights,
        // and scatter back into the residual-stream layout.
        Tensor xe = gatherRows(x, token_rows);
        Tensor he = experts_[e]->forward(xe);
        Tensor we = reshape(
            gatherRows(reshape(flat_weights, {n * top_k, 1}), slot_rows),
            {slot_rows.size()});
        Tensor weighted = scaleRows(he, we);
        Tensor scattered = scatterAddRows(weighted, token_rows, n);
        out = out.defined() ? add(out, scattered) : scattered;
    }

    if (!out.defined()) {
        // Cannot happen (top_k >= 1 assigns every token) but keep the
        // invariant explicit.
        panic("MoELayer::forward: no expert received any token");
    }
    (void)d;
    return out;
}

}  // namespace ftsim
