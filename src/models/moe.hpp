#ifndef FTSIM_MODELS_MOE_HPP
#define FTSIM_MODELS_MOE_HPP

/**
 * @file
 * Mixture-of-Experts layer: router + expert FFNs (Fig. 7 of the paper).
 *
 * Expert architecture follows the paper exactly:
 *  - Mixtral experts are SwiGLU FFNs: w2(silu(w1 x) * w3 x).
 *  - BlackMamba experts are plain FFNs: w2(gelu(w1 x)).
 * Sparse fine-tuning activates the top-2 experts per token; dense
 * fine-tuning activates all 8 (modelled as top_k == n_experts).
 */

#include <memory>
#include <vector>

#include "models/config.hpp"
#include "models/router.hpp"
#include "nn/lora.hpp"
#include "nn/quant.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** One expert feed-forward network. */
class Expert : public Module {
  public:
    /**
     * @param kind SwiGLU (w1, w2, w3) or Gelu (w1, w2).
     * @param use_lora QLoRA mode: each projection becomes a frozen 4-bit
     *                 base with a trainable rank-r adapter.
     */
    Expert(ExpertKind kind, std::size_t d_model, std::size_t d_ff,
           Rng& rng, bool use_lora, std::size_t lora_rank,
           Scalar lora_alpha);

    /** Applies the expert to [N, d_model] tokens. */
    Tensor forward(const Tensor& x) const;

    /** Expert architecture. */
    ExpertKind kind() const { return kind_; }

    /** Projection count (3 for SwiGLU, 2 for GELU). */
    std::size_t numProjections() const;

    /** Projection accessor: 0 = w1, 1 = w2, 2 = w3 (SwiGLU only). */
    LinearBase& projection(std::size_t i);

    /** Const projection accessor. */
    const LinearBase& projection(std::size_t i) const;

  private:
    ExpertKind kind_;
    std::unique_ptr<LinearBase> w1_;
    std::unique_ptr<LinearBase> w2_;
    std::unique_ptr<LinearBase> w3_;  // SwiGLU only.
};

/** Router + experts, with dense/sparse activation via top_k. */
class MoELayer : public Module {
  public:
    /** Builds the layer per the model configuration. */
    MoELayer(const MiniModelConfig& cfg, Rng& rng);

    /**
     * Applies MoE to [N, d_model] tokens with the given number of active
     * experts (cfg.topK normally; nExperts for dense fine-tuning).
     */
    Tensor forward(const Tensor& x, std::size_t top_k);

    /** The gating router (exposes load statistics). */
    Router& router() { return *router_; }

    /** Expert count. */
    std::size_t numExperts() const { return experts_.size(); }

    /** Expert accessor. */
    Expert& expert(std::size_t i);

    /** Const expert accessor. */
    const Expert& expert(std::size_t i) const;

    /** Auxiliary loss from the most recent forward (may be undefined). */
    const Tensor& lastAuxLoss() const { return lastAuxLoss_; }

  private:
    std::unique_ptr<Router> router_;
    std::vector<std::unique_ptr<Expert>> experts_;
    Tensor lastAuxLoss_;
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_MOE_HPP
