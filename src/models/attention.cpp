#include "models/attention.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

namespace {

/** Validates the head geometry before any member initialization. */
std::size_t
checkedHeadDim(std::size_t d_model, std::size_t num_heads)
{
    if (num_heads == 0 || d_model % num_heads != 0)
        fatal("CausalSelfAttention: d_model must divide by num_heads");
    return d_model / num_heads;
}

}  // namespace

CausalSelfAttention::CausalSelfAttention(std::size_t d_model,
                                         std::size_t num_heads, Rng& rng,
                                         bool frozen)
    : numHeads_(num_heads),
      dHead_(checkedHeadDim(d_model, num_heads)),
      q_(d_model, d_model, rng),
      k_(d_model, d_model, rng),
      v_(d_model, d_model, rng),
      o_(d_model, d_model, rng)
{
    registerChild("q_proj", &q_);
    registerChild("k_proj", &k_);
    registerChild("v_proj", &v_);
    registerChild("o_proj", &o_);
    if (frozen)
        freeze();
}

Tensor
CausalSelfAttention::forward(const Tensor& x) const
{
    if (x.dim() != 3)
        fatal(strCat("CausalSelfAttention: expected [B, T, D], got ",
                     shapeToString(x.shape())));

    Tensor q = splitHeads(q_.forward(x), numHeads_);  // [B*H, T, Dh]
    Tensor k = splitHeads(k_.forward(x), numHeads_);
    Tensor v = splitHeads(v_.forward(x), numHeads_);

    const Scalar inv_sqrt_d =
        1.0 / std::sqrt(static_cast<Scalar>(dHead_));
    Tensor scores = scale(bmm(q, transposeLast(k)), inv_sqrt_d);
    Tensor probs = softmaxLastDim(causalMask(scores));
    Tensor ctx = bmm(probs, v);                       // [B*H, T, Dh]
    return o_.forward(mergeHeads(ctx, numHeads_));
}

}  // namespace ftsim
