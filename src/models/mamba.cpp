#include "models/mamba.hpp"

#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

MambaLayer::MambaLayer(std::size_t d_model, std::size_t d_inner,
                       std::size_t conv_k, Rng& rng)
    : dInner_(d_inner),
      inProj_(d_model, 2 * d_inner, rng),
      aProj_(d_inner, d_inner, rng),
      outProj_(d_inner, d_model, rng)
{
    if (d_inner == 0 || conv_k == 0)
        fatal("MambaLayer: zero-sized dimension");
    registerChild("in_proj", &inProj_);
    registerChild("a_proj", &aProj_);
    registerChild("out_proj", &outProj_);
    const Scalar bound = 1.0 / std::sqrt(static_cast<Scalar>(conv_k));
    convW_ = registerParameter(
        "conv1d.weight", Tensor::randu({conv_k, d_inner}, rng, bound));
}

Tensor
MambaLayer::forward(const Tensor& x) const
{
    if (x.dim() != 3)
        fatal(strCat("MambaLayer: expected [B, T, D], got ",
                     shapeToString(x.shape())));

    // Project and split into the value path (u) and the gate path (z).
    Tensor xz = inProj_.forward(x);                 // [B, T, 2*Di]
    Tensor u = sliceLastDim(xz, 0, dInner_);
    Tensor z = sliceLastDim(xz, dInner_, dInner_);

    // Short causal depthwise convolution, then SiLU (as in Mamba).
    u = silu(conv1dDepthwiseCausal(u, convW_));

    // Selective (input-dependent) decay a_t in (0, 1); the state update
    // h_t = a_t h_{t-1} + (1 - a_t) u_t is a discretized selective SSM
    // with a zero-order-hold style input gate.
    Tensor a = sigmoid(aProj_.forward(u));          // [B, T, Di]
    Tensor drive = mul(addScalar(neg(a), 1.0), u);  // (1 - a) * u
    Tensor h = selectiveScan(a, drive);

    // Gated output, as in Mamba: y = h * silu(z).
    return outProj_.forward(mul(h, silu(z)));
}

}  // namespace ftsim
