#ifndef FTSIM_MODELS_ROUTER_HPP
#define FTSIM_MODELS_ROUTER_HPP

/**
 * @file
 * Top-k softmax gating router for MoE layers.
 *
 * Implements the pseudo-code of Fig. 12 in the paper: hidden states go
 * through a linear router producing per-expert logits; a softmax plus
 * top-k selection assigns each token to k experts with renormalized gate
 * weights. The router keeps cumulative token-assignment statistics, which
 * the load-imbalance study (Fig. 11) reads out.
 */

#include <memory>
#include <vector>

#include "nn/lora.hpp"
#include "nn/quant.hpp"
#include "tensor/tensor.hpp"

namespace ftsim {

class Rng;

/** Output of one routing decision over N tokens. */
struct RoutingInfo {
    /** Renormalized gate weights [N, k] (differentiable). */
    Tensor weights;
    /** Selected expert ids, flattened [N * k]. */
    std::vector<int> experts;
    /** Tokens assigned to each expert in this call. */
    std::vector<std::size_t> tokensPerExpert;
    /**
     * Switch-Transformer-style load-balancing auxiliary loss
     * E * sum_e f_e * P_e; undefined tensor when disabled.
     */
    Tensor auxLoss;
};

/** Linear router with top-k gating and assignment statistics. */
class Router : public Module {
  public:
    /**
     * @param d_model token width.
     * @param n_experts number of experts to route across.
     * @param use_lora QLoRA mode: 4-bit frozen base + rank-r adapter
     *                 (the paper adapts the routers too).
     * @param aux_loss_weight Switch aux-loss weight (0 disables).
     */
    Router(std::size_t d_model, std::size_t n_experts, Rng& rng,
           bool use_lora = false, std::size_t lora_rank = 4,
           Scalar aux_loss_weight = 0.0);

    /**
     * Routes N tokens ([N, d_model]) to their top-k experts.
     * Updates the cumulative statistics.
     */
    RoutingInfo route(const Tensor& tokens, std::size_t top_k);

    /** Number of experts. */
    std::size_t numExperts() const { return nExperts_; }

    /** Cumulative per-expert token counts since the last reset. */
    const std::vector<std::size_t>& cumulativeCounts() const
    {
        return cumulativeCounts_;
    }

    /** Total routed (token, slot) assignments since the last reset. */
    std::size_t totalAssignments() const { return totalAssignments_; }

    /** Clears the cumulative statistics. */
    void resetStats();

    /** The gating projection (weight-transfer plumbing). */
    LinearBase& gate() { return *proj_; }

    /** Const gating projection. */
    const LinearBase& gate() const { return *proj_; }

  private:
    std::size_t nExperts_;
    Scalar auxLossWeight_;
    std::unique_ptr<LinearBase> proj_;
    std::vector<std::size_t> cumulativeCounts_;
    std::size_t totalAssignments_ = 0;
};

}  // namespace ftsim

#endif  // FTSIM_MODELS_ROUTER_HPP
