#include "models/router.hpp"

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace ftsim {

Router::Router(std::size_t d_model, std::size_t n_experts, Rng& rng,
               bool use_lora, std::size_t lora_rank, Scalar aux_loss_weight)
    : nExperts_(n_experts), auxLossWeight_(aux_loss_weight)
{
    if (n_experts == 0)
        fatal("Router: need at least one expert");
    if (use_lora) {
        proj_ = std::make_unique<LoRALinear>(
            std::make_unique<QuantLinear>(d_model, n_experts, rng),
            lora_rank, 2.0 * static_cast<Scalar>(lora_rank), rng);
    } else {
        proj_ = std::make_unique<DenseLinear>(d_model, n_experts, rng);
    }
    registerChild("gate", proj_.get());
    cumulativeCounts_.assign(n_experts, 0);
}

RoutingInfo
Router::route(const Tensor& tokens, std::size_t top_k)
{
    if (tokens.dim() != 2)
        fatal(strCat("Router::route: expected [N, D] tokens, got ",
                     shapeToString(tokens.shape())));
    if (top_k == 0 || top_k > nExperts_)
        fatal(strCat("Router::route: top_k=", top_k, " out of range"));

    const std::size_t n = tokens.size(0);

    // Fig. 12: router logits -> softmax -> top-k -> renormalize.
    Tensor logits = proj_->forward(tokens);        // [N, E]
    Tensor probs = softmaxLastDim(logits);         // [N, E]
    TopKResult picks = topkLastDim(probs, top_k);  // data-only selection
    Tensor selected = gatherLastDim(probs, picks.indices, top_k);
    Tensor weights = normalizeLastDim(selected);   // [N, k]

    RoutingInfo info;
    info.weights = weights;
    info.experts = picks.indices;
    info.tokensPerExpert.assign(nExperts_, 0);
    for (int e : picks.indices) {
        ++info.tokensPerExpert[static_cast<std::size_t>(e)];
        ++cumulativeCounts_[static_cast<std::size_t>(e)];
    }
    totalAssignments_ += n * top_k;

    if (auxLossWeight_ > 0.0) {
        // Switch aux loss: E * sum_e f_e P_e, where f_e is the (constant)
        // fraction of assignments routed to expert e and P_e the mean
        // router probability. Expressed as matmul so it differentiates
        // through `probs` only.
        std::vector<Scalar> frac(nExperts_);
        for (std::size_t e = 0; e < nExperts_; ++e) {
            frac[e] = static_cast<Scalar>(info.tokensPerExpert[e]) /
                      static_cast<Scalar>(n * top_k);
        }
        Tensor f_col = Tensor::fromVector({nExperts_, 1}, std::move(frac));
        Tensor dot = matmul(probs, f_col);  // [N, 1]
        info.auxLoss =
            scale(meanAll(dot),
                  auxLossWeight_ * static_cast<Scalar>(nExperts_));
    }
    return info;
}

void
Router::resetStats()
{
    cumulativeCounts_.assign(nExperts_, 0);
    totalAssignments_ = 0;
}

}  // namespace ftsim
