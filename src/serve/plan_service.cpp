#include "serve/plan_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "gpusim/gpu_spec.hpp"
#include "gpusim/registry_snapshot.hpp"

namespace ftsim {

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

PlanService::PlanService(ServiceConfig config)
    : config_(std::move(config)),
      tenant_burst_(config_.tenantBurst > 0.0
                        ? config_.tenantBurst
                        : std::max(1.0, config_.tenantRps)),
      registry_(std::make_shared<PlanRegistry>()),
      catalog_fingerprint_(config_.catalog.fingerprint()),
      answers_(config_.maxAnswers),
      planners_(config_.maxPlanners),
      sources_(config_.maxSources),
      stats_(config_.statsRegistry
                 ? config_.statsRegistry
                 : std::make_shared<StatsRegistry>()),
      requests_(stats_->counter("serve.requests")),
      coalesced_(stats_->counter("serve.coalesced")),
      executed_(stats_->counter("serve.executed")),
      rate_limited_(stats_->counter("serve.rate_limited")),
      planners_created_(stats_->counter("serve.planners.created")),
      planner_reuses_(stats_->counter("serve.planners.reuses")),
      planner_hits_(stats_->counter("planner.step_cache_hits")),
      planner_misses_(stats_->counter("planner.step_cache_misses")),
      latency_(stats_->histogram("serve.latency_ms", 0.0,
                                 config_.latencyMaxMs > 0.0
                                     ? config_.latencyMaxMs
                                     : 10000.0,
                                 4096)),
      pool_(config_.workers > 0 ? config_.workers : hardwareThreads())
{
    stats_provider_ = stats_->addProvider(
        [this](StatsRegistry::Sink& sink) { publishDynamicStats(sink); });
}

PlanService::~PlanService()
{
    // The registry may outlive this service (it is shared with the
    // network front end); unhook the snapshot provider before the
    // members it reads are torn down. The cells themselves stay valid
    // until stats_ releases its reference, after pool_ joins.
    stats_->removeProvider(stats_provider_);
}

double
PlanService::clockMs() const
{
    return config_.clock ? config_.clock() : nowMs();
}

void
PlanService::noteSource(const std::string& source, bool coalesced,
                        bool rate_limited)
{
    if (source.empty())
        return;
    std::lock_guard<std::mutex> lock(sources_mutex_);
    SourceStats* row = sources_.get(source);
    if (row == nullptr) {
        sources_.put(source, SourceStats{});
        row = sources_.get(source);
    }
    ++row->requests;
    row->coalesced += coalesced ? 1 : 0;
    row->rateLimited += rate_limited ? 1 : 0;
}

Result<bool>
PlanService::admitTenant(const std::string& tenant)
{
    const double now = clockMs();
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
        // A fresh (unauthenticated) name: bound the table before
        // tracking it, or name rotation grows the service without
        // limit — the traffic class the caches are bounded against.
        if (config_.maxTenants > 0 &&
            tenants_.size() >= config_.maxTenants) {
            // O(maxTenants) victim scan, deliberately: it only runs
            // for a NEW name with the table already full, and a few
            // thousand map nodes cost ~tens of µs — noise next to the
            // request it admits. Revisit with a recency list if caps
            // grow past ~10^5.
            auto victim = tenants_.end();
            for (auto i = tenants_.begin(); i != tenants_.end(); ++i)
                if (i->second.inflight == 0 &&
                    (victim == tenants_.end() ||
                     i->second.lastSeenMs < victim->second.lastSeenMs))
                    victim = i;
            if (victim == tenants_.end())
                return Error{
                    ErrorCode::RateLimited,
                    strCat("tenant table full (", config_.maxTenants,
                           " tenants, all with requests in flight)")};
            tenants_.erase(victim);
        }
        it = tenants_.emplace(tenant, TenantState{}).first;
    }
    TenantState& state = it->second;
    state.lastSeenMs = now;
    if (config_.tenantRps > 0.0) {
        if (!state.seen) {
            // A new tenant starts with a full bucket.
            state.tokens = tenant_burst_;
            state.seen = true;
        } else {
            state.tokens = std::min(
                tenant_burst_,
                state.tokens +
                    (now - state.lastRefillMs) / 1000.0 *
                        config_.tenantRps);
        }
        state.lastRefillMs = now;
    }
    if (config_.tenantMaxInflight > 0 &&
        state.inflight >= config_.tenantMaxInflight) {
        ++state.rejectedInflight;
        return Error{ErrorCode::RateLimited,
                     strCat("tenant \"", tenant, "\" has ",
                            state.inflight,
                            " requests in flight (limit ",
                            config_.tenantMaxInflight, ")")};
    }
    if (config_.tenantRps > 0.0) {
        if (state.tokens < 1.0) {
            ++state.rejectedRate;
            return Error{
                ErrorCode::RateLimited,
                strCat("tenant \"", tenant, "\" exceeded ",
                       config_.tenantRps, " requests/s (burst ",
                       tenant_burst_, ")")};
        }
        state.tokens -= 1.0;
    }
    ++state.admitted;
    ++state.inflight;
    return true;
}

void
PlanService::releaseTenant(const std::string& tenant)
{
    if (tenant.empty() || !quotasEnabled())
        return;
    std::lock_guard<std::mutex> lock(tenants_mutex_);
    auto it = tenants_.find(tenant);
    if (it != tenants_.end() && it->second.inflight > 0)
        --it->second.inflight;
}

void
PlanService::finishExecution(const std::string& key, bool cacheable,
                             std::promise<PlanResponse>& promise,
                             PlanResponse&& response)
{
    std::vector<std::function<void()>> notifies;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        if (it == inflight_.end())
            return;  // Unreachable: one finish per execution.
        notifies = std::move(it->second->notifies);
        // Promote to the bounded answer cache. Evicted futures die
        // here, but any waiter still blocked on one holds its own
        // shared_future copy — eviction can never orphan it.
        // Guard-path failures are not promoted at all (@p cacheable):
        // their waiters still resolve, but the next identical request
        // recomputes.
        if (cacheable)
            answers_.put(key, it->second->future);
        // Release the coalesced tenants' slots *before* resolving
        // (tenants_mutex_ nests under inflight_mutex_ here and
        // nowhere else): a serial caller that .get()s an answer and
        // immediately retries must find its slot free.
        for (const std::string& tenant : it->second->waitingTenants)
            releaseTenant(tenant);
        inflight_.erase(it);
        // Resolve *inside* the lock, last among the state changes:
        // any thread that finds the promoted entry in answers_ (the
        // same lock) sees a ready future, so the cached path's
        // synchronous notify never announces an unready answer — and
        // a caller unblocked by get() observes every cache/quota/
        // counter effect of its request already applied, the serial
        // determinism the golden e2e pins.
        promise.set_value(std::move(response));
    }
    // Completion callbacks run unlocked, after readiness — the
    // SubmitOptions contract.
    for (const std::function<void()>& notify : notifies)
        notify();
}

std::shared_future<PlanResponse>
PlanService::submit(const PlanRequest& request)
{
    return submit(request, SubmitOptions{});
}

std::shared_future<PlanResponse>
PlanService::submit(const PlanRequest& request,
                    const SubmitOptions& options)
{
    requests_.inc();

    // Live introspection answers synchronously from current state:
    // caching a snapshot would serve stale bytes the moment another
    // plan compiles, and coalescing two fleet queries would hide the
    // work between them. Quota-exempt by construction — the parser
    // rejects a tenant on these kinds. Counted under executed so the
    // requests = executed + coalesced + rateLimited ledger holds.
    if (isLiveKind(request.query)) {
        executed_.inc();
        noteSource(options.source, false, false);
        std::promise<PlanResponse> ready;
        ready.set_value(liveAnswer(request));
        std::shared_future<PlanResponse> future =
            ready.get_future().share();
        if (options.notify)
            options.notify();
        return future;
    }

    // Admission control at the door, before any cache lookup: quotas
    // meter request pressure per tenant, cached or not, so the
    // rejection pattern is deterministic for a serial submitter.
    const bool governed = !request.tenant.empty() && quotasEnabled();
    if (governed) {
        Result<bool> admitted = admitTenant(request.tenant);
        if (!admitted) {
            rate_limited_.inc();
            noteSource(options.source, false, true);
            PlanResponse rejection =
                errorResponse(request, admitted.error());
            rejection.id.clear();  // Shared-future id convention.
            std::promise<PlanResponse> ready;
            ready.set_value(std::move(rejection));
            std::shared_future<PlanResponse> future =
                ready.get_future().share();
            if (options.notify)
                options.notify();  // Ready now: notify synchronously.
            return future;
        }
    }

    const std::string key = request.canonicalKey();
    const double enqueued_ms = clockMs();

    std::function<void()> task;
    std::shared_future<PlanResponse> future;
    bool ready_now = false;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        if (std::shared_future<PlanResponse>* cached =
                answers_.get(key)) {
            // Answered before: share the completed execution.
            coalesced_.inc();
            future = *cached;
            ready_now = true;
        } else if (auto it = inflight_.find(key);
                   it != inflight_.end()) {
            // In flight: share the running execution. The tenant's
            // inflight slot is held until that execution finishes,
            // and the entry carries this submission's completion
            // callback alongside the earlier ones.
            coalesced_.inc();
            if (governed)
                it->second->waitingTenants.push_back(request.tenant);
            if (options.notify)
                it->second->notifies.push_back(options.notify);
            noteSource(options.source, true, false);
            return it->second->future;
        } else {
            auto entry = std::make_shared<InflightEntry>();
            // An explicit promise, not a packaged_task: the future
            // must resolve inside finishExecution (after the cache
            // promotion, before the completion callbacks) — a
            // packaged_task resolves only on task return, after the
            // callbacks, and a notified poll loop would find the
            // answer not ready and sleep forever.
            auto promise =
                std::make_shared<std::promise<PlanResponse>>();
            // NB: the lambda must not capture `entry` — the entry owns
            // the future whose shared state would own the lambda, a
            // reference cycle (ASan-visible leak). Cacheability
            // travels by value.
            task = [this, request, key, enqueued_ms, promise] {
                // execute() is designed not to throw, but if anything
                // below it does (bad_alloc, a fatal() on a crafted
                // programmatic scenario), the future must still
                // resolve with a response and finishExecution must
                // still run — otherwise the key stays poisoned in
                // inflight_ forever and every admitted tenant's slot
                // leaks. Guard answers are marked non-cacheable: a
                // transient failure must not become the key's
                // permanent cached answer.
                PlanResponse response;
                bool cacheable = true;
                try {
                    response = execute(request);
                } catch (const std::exception& e) {
                    cacheable = false;
                    response = errorResponse(
                        request,
                        Error{ErrorCode::InvalidArgument,
                              strCat("execution failed: ", e.what())});
                    response.id.clear();
                } catch (...) {
                    cacheable = false;
                    response = errorResponse(
                        request,
                        Error{ErrorCode::InvalidArgument,
                              "execution failed: unknown error"});
                    response.id.clear();
                }
                recordLatencyMs(clockMs() - enqueued_ms);
                executed_.inc();
                finishExecution(key, cacheable, *promise,
                                std::move(response));
            };
            entry->future = promise->get_future().share();
            if (governed)
                entry->waitingTenants.push_back(request.tenant);
            if (options.notify)
                entry->notifies.push_back(options.notify);
            future = entry->future;
            inflight_.emplace(key, std::move(entry));
        }
    }
    noteSource(options.source, ready_now, false);
    if (task) {
        pool_.submit(std::move(task));
    } else {
        if (governed) {
            // Served straight from the answer cache: the admission
            // slot was only held across this call.
            releaseTenant(request.tenant);
        }
        if (options.notify)
            options.notify();  // Cached: ready before submit returned.
    }
    return future;
}

PlanResponse
PlanService::liveAnswer(const PlanRequest& request) const
{
    const QueryKind kind = request.query;
    PlanResponse response;
    response.query = kind;
    response.ok = true;
    if (kind == QueryKind::Snapshot) {
        response.snapshot = saveRegistrySnapshot(*registry_);
        response.value =
            static_cast<double>(response.snapshot.size());
        return response;
    }
    if (kind == QueryKind::Stats) {
        // Live registry scrape: every cell read atomically, providers
        // contribute the dynamic rows (tenants, sources, LRU sizes),
        // serialized once here so the wire payload is self-contained.
        const StatsSnapshot snap = stats_->snapshot();
        response.value = static_cast<double>(snap.entries.size());
        response.statsJson = snap.toJson();
        return response;
    }
    if (kind == QueryKind::LoadSnapshot) {
        // Warm-start push (the router heals a rejoining shard with a
        // survivor's snapshot). Hostile bytes are the typed errors of
        // loadRegistrySnapshot — all-or-nothing, never a partial load.
        Result<SnapshotLoadInfo> loaded =
            loadRegistrySnapshot(*registry_, request.snapshot);
        if (!loaded)
            return errorResponse(request, loaded.error());
        response.value =
            static_cast<double>(loaded.value().plansLoaded);
        response.report = strCat("loaded=", loaded.value().plansLoaded,
                                 " skipped=",
                                 loaded.value().plansSkipped);
        return response;
    }
    // Fleet health: value carries stepsSimulated — the thundering-herd
    // counter the fleet bench asserts over the wire — and the report
    // line the rest of the ledger.
    const ServiceStats s = stats();
    response.value = static_cast<double>(s.stepsSimulated);
    response.report =
        strCat("requests=", s.requests, " executed=", s.executed,
               " coalesced=", s.coalesced,
               " rate_limited=", s.rateLimited,
               " steps_simulated=", s.stepsSimulated,
               " plans_compiled=", s.plansCompiled,
               " plans_loaded=", s.plansLoaded,
               " answers_cached=", s.answersCached);
    return response;
}

PlanResponse
PlanService::ask(const PlanRequest& request)
{
    PlanResponse response = submit(request).get();
    response.id = request.id;
    return response;
}

std::shared_ptr<Planner>
PlanService::plannerFor(const PlanRequest& request)
{
    // Fold the base catalog's identity in alongside the request's
    // (scenario, rates): cached planners must not survive into a
    // different price list should two services ever share a map.
    const std::string key =
        strCat(request.plannerKey(), '|', catalog_fingerprint_);
    std::lock_guard<std::mutex> lock(planners_mutex_);
    if (std::shared_ptr<Planner>* pooled = planners_.get(key)) {
        planner_reuses_.inc();
        return *pooled;
    }
    CloudCatalog catalog = config_.catalog;
    for (const CloudOffering& rate : request.rates)
        catalog.withRate(rate.gpuName, rate.dollarsPerHour);
    auto planner = std::make_shared<Planner>(request.scenario,
                                             std::move(catalog),
                                             registry_);
    planner->setParallelism(config_.plannerParallelism);
    // Cell-level bind: we hold planners_mutex_, so the registry mutex
    // must not be taken here (the snapshot provider acquires them in
    // the opposite order).
    planner->bindStats(stats_, planner_hits_, planner_misses_);
    planners_created_.inc();
    // Freeze an evicted planner's step count into the retired total —
    // the fleet-wide stepsSimulated must not forget work just because
    // its planner aged out. (A request still holding the shared_ptr
    // keeps the planner alive; steps it simulates after this snapshot
    // are the documented undercount.)
    for (auto& [evicted_key, evicted] : planners_.put(key, planner))
        retired_planner_steps_.fetch_add(
            evicted->stats().stepsSimulated);
    return planner;
}

Result<GpuSpec>
PlanService::resolveGpu(const std::string& name) const
{
    if (const GpuSpec* gpu = GpuSpec::byName(name))
        return *gpu;
    return Error{ErrorCode::UnknownGpu,
                 strCat("unknown GPU '", name,
                        "' (known: A40, A100-40GB, A100-80GB, H100)")};
}

PlanResponse
PlanService::execute(const PlanRequest& request)
{
    PlanResponse response = answer(request);
    // Coalesced futures are shared: the id slot belongs to whichever
    // caller copies the response out, never to the executed request —
    // on *every* path, or an error answer would leak the first
    // submitter's id to every coalesced tenant.
    response.id.clear();
    return response;
}

PlanResponse
PlanService::answer(const PlanRequest& request)
{
    PlanResponse response;
    response.query = request.query;

    // Rates arriving via parsePlanRequest are already validated; a
    // programmatically built request must not be able to fatal() the
    // service through CloudCatalog::add.
    for (const CloudOffering& rate : request.rates)
        if (rate.gpuName.empty() || rate.dollarsPerHour <= 0.0)
            return errorResponse(
                request, Error{ErrorCode::InvalidArgument,
                               "rates must name a GPU and be > 0"});

    const std::shared_ptr<Planner> planner = plannerFor(request);

    switch (request.query) {
    case QueryKind::MaxBatch: {
        Result<GpuSpec> gpu = resolveGpu(request.gpu);
        if (!gpu)
            return errorResponse(request, gpu.error());
        Result<int> mbs = planner->maxBatch(gpu.value());
        if (!mbs)
            return errorResponse(request, mbs.error());
        response.ok = true;
        response.value = static_cast<double>(mbs.value());
        break;
    }
    case QueryKind::Throughput: {
        Result<GpuSpec> gpu = resolveGpu(request.gpu);
        if (!gpu)
            return errorResponse(request, gpu.error());
        Result<double> qps = planner->throughput(gpu.value());
        if (!qps)
            return errorResponse(request, qps.error());
        response.ok = true;
        response.value = qps.value();
        break;
    }
    case QueryKind::CostTable:
    case QueryKind::CheapestPlan: {
        std::vector<GpuSpec> gpus;
        if (request.gpus.empty()) {
            gpus = GpuSpec::paperGpus();
        } else {
            for (const std::string& name : request.gpus) {
                Result<GpuSpec> gpu = resolveGpu(name);
                if (!gpu)
                    return errorResponse(request, gpu.error());
                gpus.push_back(gpu.value());
            }
        }
        if (request.query == QueryKind::CostTable) {
            Result<std::vector<CostRow>> rows =
                planner->costTable(gpus);
            if (!rows)
                return errorResponse(request, rows.error());
            response.rows = rows.value();
        } else {
            Result<CostRow> best = planner->cheapestPlan(gpus);
            if (!best)
                return errorResponse(request, best.error());
            response.rows.push_back(best.value());
        }
        response.ok = true;
        break;
    }
    case QueryKind::Report: {
        Result<GpuSpec> gpu = resolveGpu(request.gpu);
        if (!gpu)
            return errorResponse(request, gpu.error());
        Result<std::string> report = planner->report(gpu.value());
        if (!report)
            return errorResponse(request, report.error());
        response.ok = true;
        response.report = report.value();
        break;
    }
    case QueryKind::Snapshot:
    case QueryKind::Fleet:
    case QueryKind::LoadSnapshot:
    case QueryKind::Stats:
        // Intercepted in submit() before execution; reaching the
        // planner path would mean a bug, not a bad request.
        return errorResponse(
            request, Error{ErrorCode::InvalidArgument,
                           "live queries have no planner answer"});
    }
    return response;
}

void
PlanService::recordLatencyMs(double ms)
{
    // Lock-free: the histogram is internally atomic (torn-free
    // concurrent quantiles), so the old latency mutex is gone.
    latency_.add(ms);
}

ServiceStats
PlanService::stats() const
{
    ServiceStats out;
    out.requests = requests_.load();
    out.coalesced = coalesced_.load();
    out.executed = executed_.load();
    out.rateLimited = rate_limited_.load();
    out.plannersCreated = planners_created_.load();
    out.plannerReuses = planner_reuses_.load();
    out.plansCompiled = registry_->plansCompiled();
    out.plansLoaded = registry_->plansLoaded();
    out.planRegistryHits = registry_->planHits();
    out.queueDepth = pool_.pendingTasks();
    {
        std::lock_guard<std::mutex> lock(planners_mutex_);
        out.plannersCached = planners_.size();
        out.plannersEvicted = planners_.evictions();
        out.stepsSimulated = retired_planner_steps_.load();
        planners_.forEach(
            [&out](const std::string&,
                   const std::shared_ptr<Planner>& planner) {
                out.stepsSimulated += planner->stats().stepsSimulated;
            });
    }
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        out.answersCached = answers_.size();
        out.answersCachedPeak = answers_.peakSize();
        out.answersEvicted = answers_.evictions();
    }
    {
        std::lock_guard<std::mutex> lock(tenants_mutex_);
        for (const auto& [name, state] : tenants_) {
            TenantStats row;
            row.admitted = state.admitted;
            row.rejectedInflight = state.rejectedInflight;
            row.rejectedRate = state.rejectedRate;
            row.inflight = state.inflight;
            out.tenants.emplace(name, row);
        }
    }
    {
        std::lock_guard<std::mutex> lock(sources_mutex_);
        sources_.forEach(
            [&out](const std::string& name, const SourceStats& row) {
                out.sources.emplace(name, row);
            });
    }
    out.p50LatencyMs = latency_.quantile(0.5);
    out.p99LatencyMs = latency_.quantile(0.99);
    return out;
}

void
PlanService::publishDynamicStats(StatsRegistry::Sink& sink) const
{
    sink.counter("serve.plans.compiled", registry_->plansCompiled());
    sink.counter("serve.plans.loaded", registry_->plansLoaded());
    sink.counter("serve.plans.registry_hits", registry_->planHits());
    sink.counter("serve.queue_depth", pool_.pendingTasks());
    {
        std::lock_guard<std::mutex> lock(planners_mutex_);
        sink.counter("serve.planners.cached", planners_.size());
        sink.counter("serve.planners.evicted", planners_.evictions());
        std::uint64_t steps = retired_planner_steps_.load();
        planners_.forEach(
            [&steps](const std::string&,
                     const std::shared_ptr<Planner>& planner) {
                steps += planner->stats().stepsSimulated;
            });
        sink.counter("serve.steps_simulated", steps);
    }
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        sink.counter("serve.answers.cached", answers_.size());
        sink.counter("serve.answers.peak", answers_.peakSize());
        sink.counter("serve.answers.evicted", answers_.evictions());
        sink.counter("serve.answers.inflight", inflight_.size());
    }
    {
        std::lock_guard<std::mutex> lock(tenants_mutex_);
        for (const auto& [name, state] : tenants_) {
            const std::string prefix = strCat("serve.tenant.", name, '.');
            sink.counter(strCat(prefix, "admitted"), state.admitted);
            sink.counter(strCat(prefix, "rejected_inflight"),
                         state.rejectedInflight);
            sink.counter(strCat(prefix, "rejected_rate"),
                         state.rejectedRate);
            sink.counter(strCat(prefix, "inflight"), state.inflight);
        }
    }
    {
        std::lock_guard<std::mutex> lock(sources_mutex_);
        sources_.forEach(
            [&sink](const std::string& name, const SourceStats& row) {
                const std::string prefix =
                    strCat("serve.source.", name, '.');
                sink.counter(strCat(prefix, "requests"), row.requests);
                sink.counter(strCat(prefix, "coalesced"), row.coalesced);
                sink.counter(strCat(prefix, "rate_limited"),
                             row.rateLimited);
            });
    }
}

}  // namespace ftsim
