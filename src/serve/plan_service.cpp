#include "serve/plan_service.hpp"

#include <chrono>
#include <utility>

#include "common/logging.hpp"
#include "gpusim/gpu_spec.hpp"

namespace ftsim {

namespace {

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

PlanService::PlanService(ServiceConfig config)
    : config_(std::move(config)),
      registry_(std::make_shared<PlanRegistry>()),
      catalog_fingerprint_(config_.catalog.fingerprint()),
      latency_(0.0, config_.latencyMaxMs > 0.0 ? config_.latencyMaxMs
                                               : 10000.0,
               4096),
      pool_(config_.workers > 0 ? config_.workers : hardwareThreads())
{
}

PlanService::~PlanService() = default;

std::shared_future<PlanResponse>
PlanService::submit(const PlanRequest& request)
{
    requests_.fetch_add(1);
    const std::string key = request.canonicalKey();
    const double enqueued_ms = nowMs();

    std::shared_ptr<std::packaged_task<PlanResponse()>> task;
    std::shared_future<PlanResponse> future;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // In flight or already answered: share the one execution.
            coalesced_.fetch_add(1);
            return it->second;
        }
        task = std::make_shared<std::packaged_task<PlanResponse()>>(
            [this, request, enqueued_ms] {
                PlanResponse response = execute(request);
                recordLatencyMs(nowMs() - enqueued_ms);
                executed_.fetch_add(1);
                return response;
            });
        future = task->get_future().share();
        inflight_.emplace(key, future);
    }
    pool_.submit([task] { (*task)(); });
    return future;
}

PlanResponse
PlanService::ask(const PlanRequest& request)
{
    PlanResponse response = submit(request).get();
    response.id = request.id;
    return response;
}

std::shared_ptr<Planner>
PlanService::plannerFor(const PlanRequest& request)
{
    // Fold the base catalog's identity in alongside the request's
    // (scenario, rates): cached planners must not survive into a
    // different price list should two services ever share a map.
    const std::string key =
        strCat(request.plannerKey(), '|', catalog_fingerprint_);
    std::lock_guard<std::mutex> lock(planners_mutex_);
    auto it = planners_.find(key);
    if (it != planners_.end()) {
        planner_reuses_.fetch_add(1);
        return it->second;
    }
    CloudCatalog catalog = config_.catalog;
    for (const CloudOffering& rate : request.rates)
        catalog.withRate(rate.gpuName, rate.dollarsPerHour);
    auto planner = std::make_shared<Planner>(request.scenario,
                                             std::move(catalog),
                                             registry_);
    planner->setParallelism(config_.plannerParallelism);
    planners_created_.fetch_add(1);
    planners_.emplace(key, planner);
    return planner;
}

Result<GpuSpec>
PlanService::resolveGpu(const std::string& name) const
{
    if (const GpuSpec* gpu = GpuSpec::byName(name))
        return *gpu;
    return Error{ErrorCode::UnknownGpu,
                 strCat("unknown GPU '", name,
                        "' (known: A40, A100-40GB, A100-80GB, H100)")};
}

PlanResponse
PlanService::execute(const PlanRequest& request)
{
    PlanResponse response = answer(request);
    // Coalesced futures are shared: the id slot belongs to whichever
    // caller copies the response out, never to the executed request —
    // on *every* path, or an error answer would leak the first
    // submitter's id to every coalesced tenant.
    response.id.clear();
    return response;
}

PlanResponse
PlanService::answer(const PlanRequest& request)
{
    PlanResponse response;
    response.query = request.query;

    // Rates arriving via parsePlanRequest are already validated; a
    // programmatically built request must not be able to fatal() the
    // service through CloudCatalog::add.
    for (const CloudOffering& rate : request.rates)
        if (rate.gpuName.empty() || rate.dollarsPerHour <= 0.0)
            return errorResponse(
                request, Error{ErrorCode::InvalidArgument,
                               "rates must name a GPU and be > 0"});

    const std::shared_ptr<Planner> planner = plannerFor(request);

    switch (request.query) {
    case QueryKind::MaxBatch: {
        Result<GpuSpec> gpu = resolveGpu(request.gpu);
        if (!gpu)
            return errorResponse(request, gpu.error());
        Result<int> mbs = planner->maxBatch(gpu.value());
        if (!mbs)
            return errorResponse(request, mbs.error());
        response.ok = true;
        response.value = static_cast<double>(mbs.value());
        break;
    }
    case QueryKind::Throughput: {
        Result<GpuSpec> gpu = resolveGpu(request.gpu);
        if (!gpu)
            return errorResponse(request, gpu.error());
        Result<double> qps = planner->throughput(gpu.value());
        if (!qps)
            return errorResponse(request, qps.error());
        response.ok = true;
        response.value = qps.value();
        break;
    }
    case QueryKind::CostTable:
    case QueryKind::CheapestPlan: {
        std::vector<GpuSpec> gpus;
        if (request.gpus.empty()) {
            gpus = GpuSpec::paperGpus();
        } else {
            for (const std::string& name : request.gpus) {
                Result<GpuSpec> gpu = resolveGpu(name);
                if (!gpu)
                    return errorResponse(request, gpu.error());
                gpus.push_back(gpu.value());
            }
        }
        if (request.query == QueryKind::CostTable) {
            Result<std::vector<CostRow>> rows =
                planner->costTable(gpus);
            if (!rows)
                return errorResponse(request, rows.error());
            response.rows = rows.value();
        } else {
            Result<CostRow> best = planner->cheapestPlan(gpus);
            if (!best)
                return errorResponse(request, best.error());
            response.rows.push_back(best.value());
        }
        response.ok = true;
        break;
    }
    case QueryKind::Report: {
        Result<GpuSpec> gpu = resolveGpu(request.gpu);
        if (!gpu)
            return errorResponse(request, gpu.error());
        Result<std::string> report = planner->report(gpu.value());
        if (!report)
            return errorResponse(request, report.error());
        response.ok = true;
        response.report = report.value();
        break;
    }
    }
    return response;
}

void
PlanService::recordLatencyMs(double ms)
{
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latency_.add(ms);
}

ServiceStats
PlanService::stats() const
{
    ServiceStats out;
    out.requests = requests_.load();
    out.coalesced = coalesced_.load();
    out.executed = executed_.load();
    out.plannersCreated = planners_created_.load();
    out.plannerReuses = planner_reuses_.load();
    out.plansCompiled = registry_->plansCompiled();
    out.planRegistryHits = registry_->planHits();
    {
        std::lock_guard<std::mutex> lock(planners_mutex_);
        for (const auto& [key, planner] : planners_)
            out.stepsSimulated += planner->stats().stepsSimulated;
    }
    {
        std::lock_guard<std::mutex> lock(latency_mutex_);
        out.p50LatencyMs = latency_.quantile(0.5);
        out.p99LatencyMs = latency_.quantile(0.99);
    }
    return out;
}

}  // namespace ftsim
