#ifndef FTSIM_SERVE_PLAN_SERVICE_HPP
#define FTSIM_SERVE_PLAN_SERVICE_HPP

/**
 * @file
 * The multi-tenant, in-process plan-serving service.
 *
 * `PlanService` brokers concurrent `PlanRequest`s across a fleet of
 * `Planner`s behind an admission queue and worker pool. Three layers of
 * deduplication make a duplicate-heavy multi-tenant load cheap:
 *
 *  1. **Request coalescing.** Identical requests (same canonicalKey —
 *     everything but the client id) share one execution with
 *     shared-future once-semantics: the first submit runs, every
 *     racer and every later duplicate waits on (or instantly reads)
 *     the same future. This is the planner step cache's trick lifted
 *     one level, from step profiles to whole answers.
 *  2. **Planner sharing.** Requests whose (scenario, rates) agree —
 *     whatever question they ask — are routed to one `Planner` keyed
 *     by `Scenario::canonicalKey()`, so tenants planning the same run
 *     share its memoized step cache.
 *  3. **Plan-registry sharing.** All planners are constructed over one
 *     `PlanRegistry`, so a fleet of scenarios on the same model
 *     compiles each `StepPlan` shape exactly once service-wide.
 *
 * The result: a thundering herd of N tenants probing one scenario x GPU
 * grid performs exactly distinct-config-many step simulations
 * (`ServiceStats::stepsSimulated`), however large N is — the
 * thundering-herd test in tests/serve/test_plan_service.cpp pins it.
 *
 * Coalescing and the response id: the shared response cannot carry
 * every duplicate's client id, so `submit()` futures resolve with an
 * *empty* id and callers stamp their own onto their copy (`ask()` does
 * this for you).
 */

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.hpp"
#include "common/parallel.hpp"
#include "core/planner.hpp"
#include "gpusim/plan_registry.hpp"
#include "serve/protocol.hpp"

namespace ftsim {

/** Construction knobs for a PlanService. */
struct ServiceConfig {
    /** Worker threads draining the admission queue; 0 = hardware. */
    unsigned workers = 0;
    /** Threads each planner may use for its own fan-outs. Keep at 1
     *  when workers saturate the machine already (the default). */
    unsigned plannerParallelism = 1;
    /** Base price list; request `rates` extend a copy per planner. */
    CloudCatalog catalog = CloudCatalog::cudoCompute();
    /** Upper edge of the latency histogram (10s of headroom). */
    double latencyMaxMs = 10000.0;
};

/** One stats() snapshot; deltas between snapshots are meaningful. */
struct ServiceStats {
    /** Requests submitted. */
    std::uint64_t requests = 0;
    /** Requests answered by an existing (in-flight or completed)
     *  identical execution. */
    std::uint64_t coalesced = 0;
    /** Requests that actually executed (requests - coalesced, once
     *  the queue drains). */
    std::uint64_t executed = 0;
    /** Distinct planners constructed. */
    std::uint64_t plannersCreated = 0;
    /** Requests routed to an already-existing planner. */
    std::uint64_t plannerReuses = 0;
    /** Step-plan shapes compiled fleet-wide (registry). */
    std::uint64_t plansCompiled = 0;
    /** Builder plan lookups answered by the shared registry. */
    std::uint64_t planRegistryHits = 0;
    /** Step simulations across every planner in the service. */
    std::uint64_t stepsSimulated = 0;
    /** Median / 99th-percentile submit-to-answer latency of executed
     *  requests, ms (histogram estimate; see common/histogram). */
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
};

/** Concurrent plan-serving facade (see file comment). */
class PlanService {
  public:
    explicit PlanService(ServiceConfig config = {});

    /** Drains the admission queue, then joins the workers. */
    ~PlanService();

    PlanService(const PlanService&) = delete;
    PlanService& operator=(const PlanService&) = delete;

    /**
     * Admits @p request and returns the future of its answer. Safe to
     * call from any thread. Identical in-flight or completed requests
     * coalesce onto one future; its response carries an empty id —
     * stamp your own onto your copy (or use ask()).
     */
    std::shared_future<PlanResponse> submit(const PlanRequest& request);

    /** submit() + wait, with the response id restored to @p request's. */
    PlanResponse ask(const PlanRequest& request);

    /** Snapshot of the service counters (see ServiceStats). */
    ServiceStats stats() const;

    /** The fleet-wide compiled-plan registry. */
    const std::shared_ptr<PlanRegistry>& planRegistry() const
    {
        return registry_;
    }

    /** The base catalog (request rates extend copies, not this). */
    const CloudCatalog& catalog() const { return config_.catalog; }

    /** Worker threads serving the admission queue. */
    unsigned workers() const { return pool_.threadCount(); }

  private:
    /** The shared planner for @p request's (scenario, rates). */
    std::shared_ptr<Planner> plannerFor(const PlanRequest& request);

    /** Runs one request to completion; never throws (errors become
     *  ok=false responses). The returned id is empty on every path —
     *  the answer is shared across coalesced submitters. */
    PlanResponse execute(const PlanRequest& request);

    /** execute()'s body; may leave a request id on error responses
     *  (execute strips it). */
    PlanResponse answer(const PlanRequest& request);

    /** Resolves a wire GPU name against the known specs. */
    Result<GpuSpec> resolveGpu(const std::string& name) const;

    void recordLatencyMs(double ms);

    ServiceConfig config_;
    std::shared_ptr<PlanRegistry> registry_;
    /** Cached catalog().fingerprint(), folded into planner keys. */
    std::string catalog_fingerprint_;

    mutable std::mutex inflight_mutex_;
    /** canonicalKey -> the one execution every duplicate shares.
     *  Entries are retained after completion (answer cache): a planner
     *  answer is deterministic for a fixed scenario, so staleness
     *  cannot occur within one service lifetime. */
    std::map<std::string, std::shared_future<PlanResponse>> inflight_;

    mutable std::mutex planners_mutex_;
    /** plannerKey -> shared planner. */
    std::map<std::string, std::shared_ptr<Planner>> planners_;

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> coalesced_{0};
    std::atomic<std::uint64_t> executed_{0};
    std::atomic<std::uint64_t> planners_created_{0};
    std::atomic<std::uint64_t> planner_reuses_{0};

    mutable std::mutex latency_mutex_;
    Histogram latency_;

    /** Last member: destroyed (drained + joined) first, while the
     *  maps and registry its tasks touch are still alive. */
    WorkerPool pool_;
};

}  // namespace ftsim

#endif  // FTSIM_SERVE_PLAN_SERVICE_HPP
