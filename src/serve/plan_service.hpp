#ifndef FTSIM_SERVE_PLAN_SERVICE_HPP
#define FTSIM_SERVE_PLAN_SERVICE_HPP

/**
 * @file
 * The multi-tenant, in-process plan-serving service.
 *
 * `PlanService` brokers concurrent `PlanRequest`s across a fleet of
 * `Planner`s behind an admission queue and worker pool. Three layers of
 * deduplication make a duplicate-heavy multi-tenant load cheap:
 *
 *  1. **Request coalescing.** Identical requests (same canonicalKey —
 *     everything but the client id and tenant) share one execution with
 *     shared-future once-semantics: the first submit runs, every
 *     racer and every later duplicate waits on (or instantly reads)
 *     the same future. This is the planner step cache's trick lifted
 *     one level, from step profiles to whole answers.
 *  2. **Planner sharing.** Requests whose (scenario, rates) agree —
 *     whatever question they ask — are routed to one `Planner` keyed
 *     by `Scenario::canonicalKey()`, so tenants planning the same run
 *     share its memoized step cache.
 *  3. **Plan-registry sharing.** All planners are constructed over one
 *     `PlanRegistry`, so a fleet of scenarios on the same model
 *     compiles each `StepPlan` shape exactly once service-wide.
 *
 * The result: a thundering herd of N tenants probing one scenario x GPU
 * grid performs exactly distinct-config-many step simulations
 * (`ServiceStats::stepsSimulated`), however large N is — the
 * thundering-herd test in tests/serve/test_plan_service.cpp pins it.
 *
 * **Resource governance (ISSUE-4).** Hostile traffic must not grow the
 * service without bound, so both memoization layers are now
 * capacity-limited and admission is quota-gated:
 *
 *  - The *answer cache* (completed executions) and the *planner pool*
 *    are `LruCache`s (`common/lru_cache.hpp`) bounded by
 *    `ServiceConfig::maxAnswers` / `maxPlanners`. In-flight executions
 *    live in a separate transient map that eviction never touches, so
 *    a coalesced waiter can never lose its future mid-wait and a
 *    thundering herd still simulates distinct-config-many steps as
 *    long as the distinct answers fit the capacity. A capacity-1
 *    service stays *correct* — evicted answers are recomputed
 *    (deterministically identical), just slower.
 *  - Requests carrying a `tenant` pass per-tenant admission control: a
 *    max-inflight gate (`tenantMaxInflight`) and a token bucket
 *    (`tenantRps` / `tenantBurst`). Overflow is rejected with a
 *    ready future answering `ErrorCode::RateLimited` — on the wire,
 *    `{"ok":false,"error":"RateLimited",...}`. Untenanted requests are
 *    quota-exempt. Admission happens *before* coalescing: a duplicate
 *    of a cached answer still spends a token, so the quota meters
 *    request pressure, not compute. The admission table itself is
 *    bounded too (`maxTenants`): a fresh name evicts the oldest idle
 *    tenant's state, and when every tracked tenant is busy, new
 *    names are rejected rather than tracked.
 *
 * Coalescing and the response id: the shared response cannot carry
 * every duplicate's client id, so `submit()` futures resolve with an
 * *empty* id and callers stamp their own onto their copy (`ask()` does
 * this for you).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/lru_cache.hpp"
#include "common/stats_registry.hpp"
#include "common/parallel.hpp"
#include "core/planner.hpp"
#include "gpusim/plan_registry.hpp"
#include "serve/protocol.hpp"

namespace ftsim {

/** Construction knobs for a PlanService. */
struct ServiceConfig {
    /** Worker threads draining the admission queue; 0 = hardware. */
    unsigned workers = 0;
    /** Threads each planner may use for its own fan-outs. Keep at 1
     *  when workers saturate the machine already (the default). */
    unsigned plannerParallelism = 1;
    /** Base price list; request `rates` extend a copy per planner. */
    CloudCatalog catalog = CloudCatalog::cudoCompute();
    /** Upper edge of the latency histogram (10s of headroom). */
    double latencyMaxMs = 10000.0;
    /**
     * Registry every service counter is published into under `serve.*`
     * (and `planner.*` for the shared step-cache cells); the `stats`
     * live query scrapes it. Null = the service creates a private one.
     * The network front end passes its own so one registry covers both
     * layers of a shard (see net/server.hpp).
     */
    std::shared_ptr<StatsRegistry> statsRegistry;

    // ----- Resource governance (0 = unbounded/disabled; only
    // maxTenants defaults to a real bound) --------------------------

    /** Completed answers retained for coalescing; LRU-evicted past
     *  this. In-flight executions are pinned outside this budget. */
    std::size_t maxAnswers = 0;
    /** Planners retained in the pool; LRU-evicted past this. A planner
     *  still referenced by an in-flight request stays alive (shared
     *  ownership) — eviction only forgets the pooled entry. */
    std::size_t maxPlanners = 0;
    /** Per-tenant cap on requests admitted but not yet answered. */
    std::uint64_t tenantMaxInflight = 0;
    /** Per-tenant steady-state admission rate, requests/second. */
    double tenantRps = 0.0;
    /** Token-bucket depth (burst allowance); 0 = max(1, tenantRps).
     *  Only meaningful when tenantRps > 0. */
    double tenantBurst = 0.0;
    /**
     * Tenant names tracked at once (0 = unbounded). The tenant field
     * is unauthenticated wire input, so without a cap a client
     * rotating fresh names per request would grow the admission table
     * without limit. At the cap, admitting a *new* name evicts the
     * least-recently-seen idle (zero-inflight) tenant — its counters
     * and token debt are forgotten, the price of bounded memory — and
     * if every tracked tenant has requests in flight, the new name is
     * rejected RateLimited until a slot frees. Only consulted when
     * quotas are enabled (no quotas, no tracking).
     */
    std::size_t maxTenants = 4096;
    /**
     * Submission sources (connections) whose per-source counters are
     * retained; least-recently-active sources are forgotten past this.
     * Source labels come from SubmitOptions::source — the network
     * front end stamps one per connection — so like tenant names they
     * are unauthenticated churn and must not grow the service.
     */
    std::size_t maxSources = 4096;
    /**
     * Virtual clock in milliseconds for admission control (token-bucket
     * refill, tenant-table recency, submit-to-answer latency). Null =
     * the real steady clock. Tests inject a controllable clock here to
     * drive the refill path deterministically; production leaves it
     * unset.
     */
    std::function<double()> clock;
};

/**
 * Per-submission options around a PlanRequest — identity *about the
 * caller*, never part of the question (like id and tenant, neither
 * field affects coalescing).
 */
struct SubmitOptions {
    /**
     * Stats bucket this submission is counted under (a connection
     * label, a shard name); empty = untracked. Appears in
     * `ServiceStats::sources`.
     */
    std::string source;
    /**
     * Invoked exactly once when the returned future is ready —
     * *after* the response is observable through it. For answers that
     * are ready at submit time (cache hits, quota rejections) the
     * callback runs synchronously on the submitting thread before
     * submit() returns; otherwise it runs on the worker that resolved
     * the execution (shared by every coalesced submission, each of
     * which registered its own callback). Must be cheap and must not
     * call back into the service (it runs under no lock, but on the
     * worker's critical path). The poll-loop front end uses this to
     * kick its wake pipe.
     */
    std::function<void()> notify;
};

/** Per-source submission counters (one stats() row per source seen). */
struct SourceStats {
    /** Requests submitted under this source label. */
    std::uint64_t requests = 0;
    /** Of those, answered by an existing execution. */
    std::uint64_t coalesced = 0;
    /** Of those, rejected by admission control. */
    std::uint64_t rateLimited = 0;
};

/** Per-tenant admission counters (one stats() row per tenant seen). */
struct TenantStats {
    /** Requests that passed admission control. */
    std::uint64_t admitted = 0;
    /** Rejections by the max-inflight gate. */
    std::uint64_t rejectedInflight = 0;
    /** Rejections by the token bucket. */
    std::uint64_t rejectedRate = 0;
    /** Admitted requests whose answer is still pending right now. */
    std::uint64_t inflight = 0;
};

/**
 * One stats() snapshot; deltas between snapshots are meaningful.
 * Since ISSUE-8 this struct is a *view* over the service's
 * StatsRegistry: every scalar below reads the same registry cell the
 * live `stats` scrape serializes, so both surfaces always agree.
 */
struct ServiceStats {
    /** Requests submitted (admitted or not). */
    std::uint64_t requests = 0;
    /** Requests answered by an existing (in-flight or completed)
     *  identical execution. */
    std::uint64_t coalesced = 0;
    /** Requests that actually executed (requests - coalesced -
     *  rateLimited, once the queue drains). */
    std::uint64_t executed = 0;
    /** Requests rejected by admission control (all tenants). */
    std::uint64_t rateLimited = 0;
    /** Distinct planners constructed. */
    std::uint64_t plannersCreated = 0;
    /** Requests routed to an already-existing planner. */
    std::uint64_t plannerReuses = 0;
    /** Planners LRU-evicted from the pool. */
    std::uint64_t plannersEvicted = 0;
    /** Planners currently pooled. */
    std::uint64_t plannersCached = 0;
    /** Completed answers currently cached. */
    std::uint64_t answersCached = 0;
    /** Largest answersCached ever reached — must never exceed
     *  ServiceConfig::maxAnswers when that is set (bench-asserted). */
    std::uint64_t answersCachedPeak = 0;
    /** Completed answers LRU-evicted from the cache. */
    std::uint64_t answersEvicted = 0;
    /** Step-plan shapes compiled fleet-wide (registry). */
    std::uint64_t plansCompiled = 0;
    /** Step-plan shapes adopted from a warm-start snapshot instead of
     *  compiled (registry; see gpusim/registry_snapshot.hpp). */
    std::uint64_t plansLoaded = 0;
    /** Builder plan lookups answered by the shared registry. */
    std::uint64_t planRegistryHits = 0;
    /** Step simulations across every planner in the service. Evicted
     *  planners contribute their count as of eviction; steps a planner
     *  simulates *after* leaving the pool (while finishing an in-flight
     *  request) are not re-read. */
    std::uint64_t stepsSimulated = 0;
    /** Tasks queued behind the workers right now. */
    std::uint64_t queueDepth = 0;
    /** Median / 99th-percentile submit-to-answer latency of executed
     *  requests, ms (histogram estimate; see common/histogram). */
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    /** Admission counters per tenant name seen so far. */
    std::map<std::string, TenantStats> tenants;
    /** Submission counters per SubmitOptions::source label (bounded by
     *  ServiceConfig::maxSources; idle labels age out). */
    std::map<std::string, SourceStats> sources;
};

/** Concurrent plan-serving facade (see file comment). */
class PlanService {
  public:
    explicit PlanService(ServiceConfig config = {});

    /** Drains the admission queue, then joins the workers. */
    ~PlanService();

    PlanService(const PlanService&) = delete;
    PlanService& operator=(const PlanService&) = delete;

    /**
     * Admits @p request and returns the future of its answer. Safe to
     * call from any thread. Identical in-flight or completed requests
     * coalesce onto one future; its response carries an empty id —
     * stamp your own onto your copy (or use ask()). A request rejected
     * by admission control returns an already-ready future answering
     * `RateLimited`.
     */
    std::shared_future<PlanResponse> submit(const PlanRequest& request);

    /**
     * submit() with caller identity: @p options.source buckets the
     * submission in `ServiceStats::sources`, and @p options.notify is
     * invoked once the future is ready (see SubmitOptions). The
     * network front end submits through this overload so its poll
     * loop can sleep until an answer (not a socket) wakes it.
     */
    std::shared_future<PlanResponse> submit(const PlanRequest& request,
                                            const SubmitOptions& options);

    /** submit() + wait, with the response id restored to @p request's. */
    PlanResponse ask(const PlanRequest& request);

    /** Snapshot of the service counters (see ServiceStats). */
    ServiceStats stats() const;

    /** The fleet-wide compiled-plan registry. */
    const std::shared_ptr<PlanRegistry>& planRegistry() const
    {
        return registry_;
    }

    /** The stats registry this service publishes into (never null;
     *  ServiceConfig::statsRegistry or a private one). */
    const std::shared_ptr<StatsRegistry>& statsRegistry() const
    {
        return stats_;
    }

    /** The base catalog (request rates extend copies, not this). */
    const CloudCatalog& catalog() const { return config_.catalog; }

    /** Worker threads serving the admission queue. */
    unsigned workers() const { return pool_.threadCount(); }

  private:
    /** Per-tenant admission state (token bucket + inflight gate). */
    struct TenantState {
        double tokens = 0.0;
        double lastRefillMs = 0.0;
        /** Last admission attempt — the maxTenants eviction order. */
        double lastSeenMs = 0.0;
        bool seen = false;
        std::uint64_t inflight = 0;
        std::uint64_t admitted = 0;
        std::uint64_t rejectedInflight = 0;
        std::uint64_t rejectedRate = 0;
    };

    /** One execution in flight: the shared answer plus the tenants
     *  whose inflight slots it releases on completion and the
     *  completion callbacks of every coalesced submission. */
    struct InflightEntry {
        std::shared_future<PlanResponse> future;
        std::vector<std::string> waitingTenants;
        std::vector<std::function<void()>> notifies;
    };

    /** True when any tenant quota is configured. */
    bool quotasEnabled() const
    {
        return config_.tenantMaxInflight > 0 || config_.tenantRps > 0.0;
    }

    /** Admission decision for @p tenant; on success the tenant's
     *  inflight slot is held until releaseTenant(). */
    Result<bool> admitTenant(const std::string& tenant);

    /** Returns @p tenant's inflight slot (no-op for empty names). */
    void releaseTenant(const std::string& tenant);

    /** The admission/latency clock: ServiceConfig::clock or the real
     *  steady clock. */
    double clockMs() const;

    /** Bumps @p source's SourceStats row (no-op for empty labels). */
    void noteSource(const std::string& source, bool coalesced,
                    bool rate_limited);

    /** The synchronous answer to a live (snapshot / fleet /
     *  load_snapshot) query — current state, so never cached,
     *  coalesced, or billed. */
    PlanResponse liveAnswer(const PlanRequest& request) const;

    /** Moves a finished execution from the in-flight map into the
     *  bounded answer cache, releases its tenants' slots, resolves
     *  @p promise with @p response (inside the cache lock, last among
     *  the state changes — see the .cpp comment), then fires the
     *  entry's completion callbacks.
     *  @param cacheable false when the answer came from the exception
     *         guard rather than answer(): a transient failure
     *         (bad_alloc under pressure) must not be promoted into
     *         the answer cache as the key's permanent answer —
     *         duplicates after the failure recompute instead.
     *         Deterministic domain errors (ok=false responses from
     *         answer()) stay cacheable. */
    void finishExecution(const std::string& key, bool cacheable,
                         std::promise<PlanResponse>& promise,
                         PlanResponse&& response);

    /** The shared planner for @p request's (scenario, rates). */
    std::shared_ptr<Planner> plannerFor(const PlanRequest& request);

    /** Runs one request to completion; never throws (errors become
     *  ok=false responses). The returned id is empty on every path —
     *  the answer is shared across coalesced submitters. */
    PlanResponse execute(const PlanRequest& request);

    /** execute()'s body; may leave a request id on error responses
     *  (execute strips it). */
    PlanResponse answer(const PlanRequest& request);

    /** Resolves a wire GPU name against the known specs. */
    Result<GpuSpec> resolveGpu(const std::string& name) const;

    void recordLatencyMs(double ms);

    /** Snapshot-time provider: contributes the derived and dynamic
     *  rows (LRU sizes, aggregate steps, per-tenant/per-source tables)
     *  that have no fixed cell to publish into. Runs under the
     *  registry mutex and takes the component mutexes below — the
     *  registry -> service lock order nothing may invert. */
    void publishDynamicStats(StatsRegistry::Sink& sink) const;

    ServiceConfig config_;
    /** Effective token-bucket depth (tenantBurst with its default). */
    double tenant_burst_ = 0.0;
    std::shared_ptr<PlanRegistry> registry_;
    /** Cached catalog().fingerprint(), folded into planner keys. */
    std::string catalog_fingerprint_;

    mutable std::mutex inflight_mutex_;
    /** canonicalKey -> the one execution every duplicate shares, for
     *  executions still running. Transient and unbounded on purpose:
     *  its size is capped by in-flight work, and keeping it out of the
     *  LRU means eviction can never orphan a coalesced waiter. */
    std::map<std::string, std::shared_ptr<InflightEntry>> inflight_;
    /** canonicalKey -> completed answer, LRU-bounded (maxAnswers).
     *  A planner answer is deterministic for a fixed scenario, so
     *  recomputing an evicted entry returns the identical response. */
    LruCache<std::string, std::shared_future<PlanResponse>> answers_;

    mutable std::mutex planners_mutex_;
    /** plannerKey -> shared planner, LRU-bounded (maxPlanners). */
    LruCache<std::string, std::shared_ptr<Planner>> planners_;
    /** stepsSimulated of evicted planners, frozen at eviction. */
    std::atomic<std::uint64_t> retired_planner_steps_{0};

    mutable std::mutex tenants_mutex_;
    std::map<std::string, TenantState> tenants_;

    mutable std::mutex sources_mutex_;
    /** SubmitOptions::source -> counters, LRU-bounded (maxSources). */
    LruCache<std::string, SourceStats> sources_;

    /** The registry every counter below lives in (declared before the
     *  cell references it hands out; never reseated). */
    std::shared_ptr<StatsRegistry> stats_;
    /** publishDynamicStats registration, removed in the destructor. */
    std::size_t stats_provider_ = 0;

    // Registry cells under `serve.*`; bumped at the same program points
    // as the pre-registry atomics they replace, so every pinned
    // counter value is unchanged. Publishing is lock-free relaxed.
    StatsCounter& requests_;
    StatsCounter& coalesced_;
    StatsCounter& executed_;
    StatsCounter& rate_limited_;
    StatsCounter& planners_created_;
    StatsCounter& planner_reuses_;
    /** Shared `planner.*` step-cache cells, registered once here so
     *  plannerFor can bind new planners while holding its pool lock
     *  (the registry mutex never nests inside a component mutex). */
    StatsCounter& planner_hits_;
    StatsCounter& planner_misses_;

    /** Submit-to-answer latency; internally atomic (lock-free adds and
     *  torn-free quantiles — see common/histogram.hpp). */
    Histogram& latency_;

    /** Last member: destroyed (drained + joined) first, while the
     *  maps and registry its tasks touch are still alive. */
    WorkerPool pool_;
};

}  // namespace ftsim

#endif  // FTSIM_SERVE_PLAN_SERVICE_HPP
