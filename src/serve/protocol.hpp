#ifndef FTSIM_SERVE_PROTOCOL_HPP
#define FTSIM_SERVE_PROTOCOL_HPP

/**
 * @file
 * The plan-serving wire protocol: line-oriented JSON requests and
 * responses.
 *
 * One request per line, one response per line — the format `ftsim_serve`
 * reads from a file or stdin and the load bench replays. A request names
 * a query kind, the GPU(s) it targets, an optional scenario override,
 * optional extra rental rates, and an optional `tenant` the service
 * bills admission quotas against (see serve/plan_service.hpp; quota
 * overflow answers `ok:false` with the `RateLimited` error code):
 *
 *   {"id":"t1-q1","query":"max_batch","gpu":"A40"}
 *   {"id":"t1-q2","query":"throughput","gpu":"H100",
 *    "scenario":{"preset":"commonsense15k","epochs":3}}
 *   {"id":"t2-q1","query":"cost_table","gpus":["A40","A100-40GB"],
 *    "rates":{"A100-40GB":1.20}}
 *   {"id":"t2-q2","query":"cheapest_plan"}
 *   {"id":"t3-q1","query":"report","gpu":"A40",
 *    "scenario":{"model":"blackmamba2p8b","num_queries":2e6}}
 *
 * The parser/writer are hand-rolled (in the spirit of `common/table`:
 * small, dependency-free, diff-friendly) and strict: unknown keys,
 * wrong types, missing required fields, and out-of-domain values all
 * come back as `InvalidArgument` — a service must reject, not guess.
 *
 * Scenario objects accept `preset` (gs_math | commonsense15k |
 * open_orca), `model` (mixtral8x7b | blackmamba2p8b), and the scalar
 * overrides `median_seq_len`, `length_sigma`, `num_queries`, `epochs`,
 * `sparse`; overrides apply on top of the preset. `rates` maps GPU
 * names to positive $/hr added to the service catalog via
 * `CloudCatalog::withRate`, so requests can price GPUs the built-in
 * CUDO *price list* does not know. The GPU must still have a known
 * spec to simulate — today that means the paper presets, of which
 * A100-40GB is the one that ships unpriced; a rate for a spec-less
 * name parses fine but any query targeting it answers `UnknownGpu`.
 */

#include <string>
#include <vector>

#include "common/result.hpp"
#include "core/cost_model.hpp"
#include "core/pipeline_types.hpp"
#include "core/scenario.hpp"

namespace ftsim {

/** The query surface of the plan service. */
enum class QueryKind {
    MaxBatch,      ///< Eq. 1 answer on one GPU -> integer value.
    Throughput,    ///< Queries/second at max batch on one GPU.
    CostTable,     ///< Table IV rows over a GPU list.
    CheapestPlan,  ///< The cheapest CostTable row.
    Report,        ///< Full markdown characterization of one GPU.
    // -- Live fleet introspection (ISSUE-6). Answered from current
    // service state, so never cached or coalesced, and quota-exempt
    // like untenanted traffic. The router intercepts `fleet`; a shard
    // answers both about itself.
    Snapshot,      ///< Binary PlanRegistry snapshot, base64 on the wire.
    Fleet,         ///< Shard/fleet health counters.
    /** Push a PlanRegistry snapshot *into* the service (ISSUE-7): the
     *  router warms a rejoining shard from a survivor's `snapshot`
     *  before its ring points return. Carries the payload in the
     *  request's `snapshot` field (base64 on the wire); hostile bytes
     *  answer the typed errors of gpusim/registry_snapshot.hpp. */
    LoadSnapshot,
    /** Live scrape of the serving stack's StatsRegistry (ISSUE-8):
     *  answers the full counter/gauge/histogram snapshot as a flat
     *  JSON object under `stats`. The router intercepts it and
     *  aggregates every shard's answer under per-shard namespacing. */
    Stats,
};

/** Wire name of a query kind ("max_batch", ...). */
const char* queryKindName(QueryKind kind);

/**
 * True for the introspection kinds (snapshot / fleet / load_snapshot /
 * stats): answered synchronously from live service state, never cached,
 * coalesced, or billed, and they take no workload fields (gpu /
 * scenario / rates / tenant).
 */
bool isLiveKind(QueryKind kind);

/** Parses a wire name; `InvalidArgument` on an unknown kind. */
Result<QueryKind> parseQueryKind(const std::string& name);

/** One parsed plan query. */
struct PlanRequest {
    /** Client-chosen correlation id, echoed on the response. */
    std::string id;
    /**
     * Tenant the request is billed to; empty = untenanted (exempt from
     * admission quotas). Like the id, the tenant is identity *around*
     * the question, not part of it: requests from different tenants
     * still coalesce onto one execution, and the tenant never appears
     * in canonicalKey() / plannerKey().
     */
    std::string tenant;
    QueryKind query = QueryKind::MaxBatch;
    /** Target GPU name for the per-GPU kinds. */
    std::string gpu;
    /** GPU list for cost_table / cheapest_plan; empty = paper set. */
    std::vector<std::string> gpus;
    /** The run being planned (protocol default: the GS/MATH preset). */
    Scenario scenario = Scenario::gsMath();
    /** Extra rental rates applied on top of the service catalog. */
    std::vector<CloudOffering> rates;
    /** load_snapshot payload, *raw* bytes (base64 on the wire — the
     *  same encoding the snapshot *response* uses). */
    std::string snapshot;

    /**
     * Request identity *excluding* the id and tenant: two tenants
     * asking the same question coalesce onto one execution keyed by
     * this string.
     */
    std::string canonicalKey() const;

    /**
     * The (scenario, rates) part of the identity: requests with equal
     * planner keys share one `Planner` (and its step cache) even when
     * they ask different questions.
     */
    std::string plannerKey() const;
};

/** One answer, mirroring the request's kind. */
struct PlanResponse {
    std::string id;
    QueryKind query = QueryKind::MaxBatch;
    bool ok = false;
    /** errorCodeName() of the failure when !ok. */
    std::string errorCode;
    std::string errorMessage;
    /** max_batch / throughput scalar answer. */
    double value = 0.0;
    /** cost_table rows (cheapest_plan: exactly one). */
    std::vector<CostRow> rows;
    /** report markdown; fleet answers reuse it for their status text. */
    std::string report;
    /** snapshot payload, *raw* bytes (the writer base64-encodes; see
     *  gpusim/registry_snapshot.hpp for the format inside). */
    std::string snapshot;
    /** stats answers: the registry snapshot, pre-serialized as one flat
     *  JSON object (StatsSnapshot::toJson(), or the router's
     *  {"router":{...},"shards":{...}} aggregate). Embedded verbatim by
     *  the writer, so shard payloads forward byte-identically. */
    std::string statsJson;
};

/**
 * Parses one request line. `InvalidArgument` on malformed JSON, unknown
 * keys/kinds, wrong types, or out-of-domain values (batch of the
 * strictness tests in tests/serve/test_protocol.cpp).
 */
Result<PlanRequest> parsePlanRequest(const std::string& line);

/** Serializes a request to its canonical single-line JSON form. */
std::string writePlanRequest(const PlanRequest& request);

/** Serializes a response to one JSON line. */
std::string writePlanResponse(const PlanResponse& response);

/**
 * The response line for input that failed to parse. Unlike
 * writePlanResponse it carries no "query" field — the request kind was
 * never established, so echoing a default would mislead clients that
 * correlate on it. @p id may be empty (an unparsed line usually
 * yielded none).
 */
std::string writeProtocolError(const std::string& id,
                               const std::string& message);

/** Builds the failure response for @p request carrying @p error. */
PlanResponse errorResponse(const PlanRequest& request,
                           const Error& error);

}  // namespace ftsim

#endif  // FTSIM_SERVE_PROTOCOL_HPP
