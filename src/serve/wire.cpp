#include "serve/wire.hpp"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.hpp"

namespace ftsim {

namespace {

/** Internal decode failure; surfaces as InvalidArgument at the API. */
struct WireErr {
    std::string msg;
};

[[noreturn]] void
bad(std::string msg)
{
    throw WireErr{std::move(msg)};
}

// ---- Field tags ------------------------------------------------------
// Shared between requests and responses where the meaning lines up
// (id, snapshot); encoded in strictly ascending order, decoded with
// the same rule, so a duplicate or shuffled tag is a typed error.

enum ReqTag : unsigned char {
    kReqQuery = 1,     ///< u8 QueryKind (required).
    kReqId = 2,        ///< str.
    kReqTenant = 3,    ///< str, non-empty.
    kReqGpu = 4,       ///< str, non-empty.
    kReqGpus = 5,      ///< u32 count + count x str.
    kReqScenario = 6,  ///< fixed scenario block (see encode).
    kReqRates = 7,     ///< u32 count + count x (str, f64).
    kReqSnapshot = 8,  ///< str, raw bytes (no base64 on this wire).
};

enum RespTag : unsigned char {
    kRespQuery = 1,     ///< u8 QueryKind (required).
    kRespId = 2,        ///< str.
    kRespOk = 3,        ///< u8 bool (required).
    kRespErrorCode = 4, ///< str.
    kRespErrorMsg = 5,  ///< str (also the ProtocolError message tag).
    kRespValue = 6,     ///< f64.
    kRespRows = 7,      ///< u32 count + count x CostRow block.
    kRespReport = 8,    ///< str.
    kRespSnapshot = 9,  ///< str, raw bytes.
    kRespStats = 10,    ///< str, pre-serialized stats JSON.
};

/** Scenario model ids (0 = absent: the preset default, Mixtral). */
enum WireModel : unsigned char {
    kModelDefault = 0,
    kModelMixtral8x7b = 1,
    kModelBlackMamba2p8b = 2,
};

// ---- Little-endian primitive writers ---------------------------------

void
putU8(std::string& out, unsigned char v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putU64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
putF64(std::string& out, double v)
{
    // The bit pattern, not a decimal spelling: doubles round-trip
    // exactly, so a decoded message keeps its coalescing identity and
    // writePlanResponse(decode(x)) reproduces the JSON path's bytes.
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    putU64(out, bits);
}

void
putStr(std::string& out, std::string_view s)
{
    if (s.size() > std::numeric_limits<std::uint32_t>::max())
        fatal("wire: string exceeds the u32 length prefix");
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s.data(), s.size());
}

// ---- Bounds-checked reader -------------------------------------------

class WireReader {
  public:
    explicit WireReader(std::string_view payload) : s_(payload) {}

    bool done() const { return pos_ >= s_.size(); }

    unsigned char u8(const char* what)
    {
        need(1, what);
        return static_cast<unsigned char>(s_[pos_++]);
    }

    std::uint32_t u32(const char* what)
    {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(s_[pos_ + i]))
                 << (8 * i);
        pos_ += 4;
        return v;
    }

    std::uint64_t u64(const char* what)
    {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(s_[pos_ + i]))
                 << (8 * i);
        pos_ += 8;
        return v;
    }

    double f64(const char* what)
    {
        const std::uint64_t bits = u64(what);
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof v);
        if (!std::isfinite(v))
            bad(strCat("non-finite number in ", what));
        return v;
    }

    bool boolean(const char* what)
    {
        const unsigned char v = u8(what);
        if (v > 1)
            bad(strCat("bad boolean in ", what));
        return v == 1;
    }

    std::string str(const char* what)
    {
        const std::uint32_t len = u32(what);
        need(len, what);
        std::string out(s_.substr(pos_, len));
        pos_ += len;
        return out;
    }

  private:
    void need(std::size_t n, const char* what)
    {
        if (pos_ + n > s_.size())
            bad(strCat("truncated payload in ", what));
    }

    std::string_view s_;
    std::size_t pos_ = 0;
};

bool
isPerGpuKind(QueryKind kind)
{
    return kind == QueryKind::MaxBatch ||
           kind == QueryKind::Throughput || kind == QueryKind::Report;
}

QueryKind
readQueryKind(WireReader& in)
{
    const unsigned char raw = in.u8("query kind");
    switch (raw) {
    case 0: return QueryKind::MaxBatch;
    case 1: return QueryKind::Throughput;
    case 2: return QueryKind::CostTable;
    case 3: return QueryKind::CheapestPlan;
    case 4: return QueryKind::Report;
    case 5: return QueryKind::Snapshot;
    case 6: return QueryKind::Fleet;
    case 7: return QueryKind::LoadSnapshot;
    case 8: return QueryKind::Stats;
    default: bad(strCat("unknown query kind byte ", unsigned{raw}));
    }
}

unsigned char
queryKindByte(QueryKind kind)
{
    return static_cast<unsigned char>(kind);
}

// ---- Scenario block --------------------------------------------------

unsigned char
modelWireId(const ModelSpec& model)
{
    if (model.fingerprint() == ModelSpec::mixtral8x7b().fingerprint())
        return kModelMixtral8x7b;
    if (model.fingerprint() ==
        ModelSpec::blackMamba2p8b().fingerprint())
        return kModelBlackMamba2p8b;
    // A foreign spec has no wire spelling (same as the JSON writer,
    // which omits "model"): the decoder keeps the preset default.
    return kModelDefault;
}

void
putScenario(std::string& out, const Scenario& scenario)
{
    putU8(out, modelWireId(scenario.model));
    putU64(out, static_cast<std::uint64_t>(scenario.medianSeqLen));
    putF64(out, scenario.lengthSigma);
    putF64(out, scenario.numQueries);
    putF64(out, scenario.epochs);
    putU8(out, scenario.sparse ? 1 : 0);
}

Scenario
readScenario(WireReader& in)
{
    // Like parseScenario: scalars apply on top of the protocol default
    // (GS/MATH), and the result must pass the same domain validation.
    Scenario scenario = Scenario::gsMath();
    const unsigned char model = in.u8("scenario model");
    switch (model) {
    case kModelDefault: break;
    case kModelMixtral8x7b:
        scenario.withModel(ModelSpec::mixtral8x7b());
        break;
    case kModelBlackMamba2p8b:
        scenario.withModel(ModelSpec::blackMamba2p8b());
        break;
    default: bad(strCat("unknown model id ", unsigned{model}));
    }
    const std::uint64_t seq = in.u64("scenario median_seq_len");
    if (seq < 1)
        bad("\"median_seq_len\" must be a positive integer");
    scenario.withMedianSeqLen(static_cast<std::size_t>(seq));
    scenario.withLengthSigma(in.f64("scenario length_sigma"));
    scenario.withNumQueries(in.f64("scenario num_queries"));
    scenario.withEpochs(in.f64("scenario epochs"));
    scenario.withSparse(in.boolean("scenario sparse"));
    Result<Scenario> valid = scenario.validated();
    if (!valid)
        bad(valid.error().message);
    return scenario;
}

// ---- Request decode --------------------------------------------------

PlanRequest
readRequest(WireReader& in)
{
    PlanRequest req;
    bool sawQuery = false, sawGpu = false, sawGpus = false;
    bool sawTenant = false, sawScenario = false, sawRates = false;
    bool sawSnapshot = false;
    int lastTag = 0;
    while (!in.done()) {
        const unsigned char tag = in.u8("field tag");
        if (tag <= lastTag)
            bad(strCat("duplicate or out-of-order tag ",
                       unsigned{tag}));
        lastTag = tag;
        switch (tag) {
        case kReqQuery:
            req.query = readQueryKind(in);
            sawQuery = true;
            break;
        case kReqId: req.id = in.str("id"); break;
        case kReqTenant:
            req.tenant = in.str("tenant");
            if (req.tenant.empty())
                bad("\"tenant\" must not be empty (omit it instead)");
            sawTenant = true;
            break;
        case kReqGpu:
            req.gpu = in.str("gpu");
            if (req.gpu.empty())
                bad("\"gpu\" must not be empty");
            sawGpu = true;
            break;
        case kReqGpus: {
            const std::uint32_t count = in.u32("gpus count");
            for (std::uint32_t i = 0; i < count; ++i) {
                std::string gpu = in.str("gpus entry");
                if (gpu.empty())
                    bad("\"gpus\" entries must be non-empty strings");
                req.gpus.push_back(std::move(gpu));
            }
            sawGpus = true;
            break;
        }
        case kReqScenario:
            req.scenario = readScenario(in);
            sawScenario = true;
            break;
        case kReqRates: {
            const std::uint32_t count = in.u32("rates count");
            for (std::uint32_t i = 0; i < count; ++i) {
                std::string name = in.str("rate gpu name");
                const double rate = in.f64("rate value");
                if (rate <= 0.0)
                    bad(strCat("rate for \"", name,
                               "\" must be a positive number"));
                req.rates.push_back({"user", std::move(name), rate});
            }
            sawRates = true;
            break;
        }
        case kReqSnapshot:
            req.snapshot = in.str("snapshot");
            sawSnapshot = true;
            break;
        default: bad(strCat("unknown request tag ", unsigned{tag}));
        }
    }
    // The tag before query decoded under the default kind — the kind
    // byte must come first (tag 1 sorts lowest), so enforce presence
    // *and* that kind-dependent checks run against the real kind.
    if (!sawQuery)
        bad("missing required query field");
    const char* kindName = queryKindName(req.query);
    if (isLiveKind(req.query)) {
        // Live queries are about the service, not a workload: any of
        // the workload-shaped fields on one is a confused caller.
        if (sawTenant || sawGpu || sawGpus || sawScenario || sawRates)
            bad(strCat("workload fields are not valid for query \"",
                       kindName, '"'));
    }
    if (req.query == QueryKind::LoadSnapshot) {
        if (!sawSnapshot)
            bad("query \"load_snapshot\" requires a snapshot");
    } else if (sawSnapshot) {
        bad(strCat("\"snapshot\" is not valid for query \"", kindName,
                   '"'));
    }
    if (isPerGpuKind(req.query)) {
        if (!sawGpu)
            bad(strCat("query \"", kindName, "\" requires a \"gpu\""));
        if (sawGpus)
            bad(strCat("\"gpus\" is not valid for query \"", kindName,
                       "\"; use \"gpu\""));
    } else if (sawGpu) {
        bad(strCat("\"gpu\" is not valid for query \"", kindName,
                   "\"; use \"gpus\""));
    }
    return req;
}

// ---- Response decode -------------------------------------------------

PlanResponse
readResponse(WireReader& in)
{
    PlanResponse resp;
    bool sawQuery = false, sawOk = false;
    int lastTag = 0;
    while (!in.done()) {
        const unsigned char tag = in.u8("field tag");
        if (tag <= lastTag)
            bad(strCat("duplicate or out-of-order tag ",
                       unsigned{tag}));
        lastTag = tag;
        switch (tag) {
        case kRespQuery:
            resp.query = readQueryKind(in);
            sawQuery = true;
            break;
        case kRespId: resp.id = in.str("id"); break;
        case kRespOk:
            resp.ok = in.boolean("ok");
            sawOk = true;
            break;
        case kRespErrorCode:
            resp.errorCode = in.str("error code");
            break;
        case kRespErrorMsg:
            resp.errorMessage = in.str("error message");
            break;
        case kRespValue: resp.value = in.f64("value"); break;
        case kRespRows: {
            const std::uint32_t count = in.u32("rows count");
            for (std::uint32_t i = 0; i < count; ++i) {
                CostRow row;
                row.gpuName = in.str("row gpu");
                row.memGB = in.f64("row mem_gb");
                const std::uint64_t raw = in.u64("row max_batch");
                const std::int64_t batch =
                    static_cast<std::int64_t>(raw);
                if (batch < std::numeric_limits<int>::min() ||
                    batch > std::numeric_limits<int>::max())
                    bad("row max_batch out of range");
                row.maxBatchSize = static_cast<int>(batch);
                row.throughputQps = in.f64("row qps");
                row.dollarsPerHour = in.f64("row usd_per_hour");
                row.totalDollars = in.f64("row total_usd");
                resp.rows.push_back(std::move(row));
            }
            break;
        }
        case kRespReport: resp.report = in.str("report"); break;
        case kRespSnapshot:
            resp.snapshot = in.str("snapshot");
            break;
        case kRespStats: resp.statsJson = in.str("stats"); break;
        default: bad(strCat("unknown response tag ", unsigned{tag}));
        }
    }
    if (!sawQuery)
        bad("missing required query field");
    if (!sawOk)
        bad("missing required ok field");
    // The writer derives the snapshot answer's `value` from the
    // payload size instead of encoding it; restore the invariant for
    // binary-native consumers.
    if (resp.ok && resp.query == QueryKind::Snapshot)
        resp.value = static_cast<double>(resp.snapshot.size());
    return resp;
}

}  // namespace

std::string
wireFrame(std::string_view payload)
{
    if (payload.empty())
        fatal("wire: refusing to frame an empty payload");
    if (payload.size() > std::numeric_limits<std::uint32_t>::max())
        fatal("wire: payload exceeds the u32 length prefix");
    std::string out;
    out.reserve(kWireHeaderBytes + payload.size());
    putU8(out, kWireMagic);
    putU8(out, kWireMagic2);
    putU8(out, kWireMagic3);
    putU8(out, kWireVersion);
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    out.append(payload.data(), payload.size());
    return out;
}

Result<std::uint32_t>
parseWireHeader(const unsigned char* header)
{
    if (header[0] != kWireMagic || header[1] != kWireMagic2 ||
        header[2] != kWireMagic3)
        return Error{ErrorCode::InvalidArgument, "bad frame magic"};
    if (header[3] != kWireVersion)
        return Error{ErrorCode::InvalidArgument,
                     strCat("unsupported wire version ",
                            unsigned{header[3]}, " (expected ",
                            unsigned{kWireVersion}, ')')};
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(header[4 + i]) << (8 * i);
    if (len == 0)
        return Error{ErrorCode::InvalidArgument,
                     "empty frame payload"};
    return len;
}

std::string
encodeRequestFrame(const PlanRequest& request)
{
    std::string p;
    putU8(p, static_cast<unsigned char>(WireMsg::Request));
    putU8(p, kReqQuery);
    putU8(p, queryKindByte(request.query));
    if (!request.id.empty()) {
        putU8(p, kReqId);
        putStr(p, request.id);
    }
    if (!request.tenant.empty()) {
        putU8(p, kReqTenant);
        putStr(p, request.tenant);
    }
    if (!request.gpu.empty()) {
        putU8(p, kReqGpu);
        putStr(p, request.gpu);
    }
    if (!request.gpus.empty()) {
        putU8(p, kReqGpus);
        putU32(p, static_cast<std::uint32_t>(request.gpus.size()));
        for (const std::string& gpu : request.gpus)
            putStr(p, gpu);
    }
    if (isLiveKind(request.query)) {
        // Live kinds carry no workload fields (the decoder, like the
        // JSON parser, rejects them); load_snapshot ships its payload
        // as raw bytes — the binary wire needs no base64.
        if (request.query == QueryKind::LoadSnapshot) {
            putU8(p, kReqSnapshot);
            putStr(p, request.snapshot);
        }
        return wireFrame(p);
    }
    putU8(p, kReqScenario);
    putScenario(p, request.scenario);
    if (!request.rates.empty()) {
        putU8(p, kReqRates);
        putU32(p, static_cast<std::uint32_t>(request.rates.size()));
        for (const CloudOffering& rate : request.rates) {
            putStr(p, rate.gpuName);
            putF64(p, rate.dollarsPerHour);
        }
    }
    return wireFrame(p);
}

std::string
encodeResponseFrame(const PlanResponse& response)
{
    std::string p;
    putU8(p, static_cast<unsigned char>(WireMsg::Response));
    putU8(p, kRespQuery);
    putU8(p, queryKindByte(response.query));
    if (!response.id.empty()) {
        putU8(p, kRespId);
        putStr(p, response.id);
    }
    putU8(p, kRespOk);
    putU8(p, response.ok ? 1 : 0);
    if (!response.ok) {
        putU8(p, kRespErrorCode);
        putStr(p, response.errorCode);
        putU8(p, kRespErrorMsg);
        putStr(p, response.errorMessage);
        return wireFrame(p);
    }
    // Field selection per kind mirrors writePlanResponse exactly, so
    // decode + writePlanResponse is byte-identical to the JSON path.
    switch (response.query) {
    case QueryKind::MaxBatch:
    case QueryKind::Throughput:
        putU8(p, kRespValue);
        putF64(p, response.value);
        break;
    case QueryKind::CostTable:
    case QueryKind::CheapestPlan:
        putU8(p, kRespRows);
        putU32(p, static_cast<std::uint32_t>(response.rows.size()));
        for (const CostRow& row : response.rows) {
            putStr(p, row.gpuName);
            putF64(p, row.memGB);
            putU64(p, static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(
                              row.maxBatchSize)));
            putF64(p, row.throughputQps);
            putF64(p, row.dollarsPerHour);
            putF64(p, row.totalDollars);
        }
        break;
    case QueryKind::Report:
        putU8(p, kRespReport);
        putStr(p, response.report);
        break;
    case QueryKind::Snapshot:
        // `value` is derived from the payload size on both wires.
        putU8(p, kRespSnapshot);
        putStr(p, response.snapshot);
        break;
    case QueryKind::Fleet:
    case QueryKind::LoadSnapshot:
        putU8(p, kRespValue);
        putF64(p, response.value);
        putU8(p, kRespReport);
        putStr(p, response.report);
        break;
    case QueryKind::Stats:
        putU8(p, kRespValue);
        putF64(p, response.value);
        putU8(p, kRespStats);
        putStr(p, response.statsJson);
        break;
    }
    return wireFrame(p);
}

std::string
encodeProtocolErrorFrame(const std::string& id,
                         const std::string& message)
{
    // No query field, like writeProtocolError: the request kind was
    // never established.
    std::string p;
    putU8(p, static_cast<unsigned char>(WireMsg::ProtocolError));
    if (!id.empty()) {
        putU8(p, kRespId);
        putStr(p, id);
    }
    putU8(p, kRespErrorMsg);
    putStr(p, message);
    return wireFrame(p);
}

Result<WireMessage>
decodeWirePayload(std::string_view payload)
{
    try {
        WireReader in(payload);
        WireMessage msg;
        const unsigned char type = in.u8("message type");
        switch (type) {
        case static_cast<unsigned char>(WireMsg::Request):
            msg.type = WireMsg::Request;
            msg.request = readRequest(in);
            return msg;
        case static_cast<unsigned char>(WireMsg::Response):
            msg.type = WireMsg::Response;
            msg.response = readResponse(in);
            return msg;
        case static_cast<unsigned char>(WireMsg::ProtocolError): {
            msg.type = WireMsg::ProtocolError;
            bool sawMessage = false;
            int lastTag = 0;
            while (!in.done()) {
                const unsigned char tag = in.u8("field tag");
                if (tag <= lastTag)
                    bad(strCat("duplicate or out-of-order tag ",
                               unsigned{tag}));
                lastTag = tag;
                if (tag == kRespId) {
                    msg.errorId = in.str("id");
                } else if (tag == kRespErrorMsg) {
                    msg.errorMessage = in.str("error message");
                    sawMessage = true;
                } else {
                    bad(strCat("unknown protocol-error tag ",
                               unsigned{tag}));
                }
            }
            if (!sawMessage)
                bad("missing required error message field");
            return msg;
        }
        default:
            bad(strCat("unknown message type ", unsigned{type}));
        }
    } catch (const WireErr& err) {
        return Error{ErrorCode::InvalidArgument,
                     strCat("bad frame: ", err.msg)};
    }
}

}  // namespace ftsim
