#ifndef FTSIM_SERVE_WIRE_HPP
#define FTSIM_SERVE_WIRE_HPP

/**
 * @file
 * The negotiated binary wire format — the compact sibling of the
 * JSON-lines protocol in serve/protocol.hpp.
 *
 * A binary *frame* is an 8-byte header followed by a payload:
 *
 *   offset  size  field
 *   0       1     magic 0xF7 (never the first byte of a JSON line)
 *   1       2     magic "FT" (0x46 0x54)
 *   3       1     version (0x01)
 *   4       4     payload length, u32 little-endian (1 .. cap)
 *   8       len   payload
 *
 * Negotiation is per-frame first-byte dispatch: 0xF7 cannot begin a
 * JSON request line (strict JSON starts with '{', whitespace, or other
 * ASCII), so the first byte of each frame selects the codec and the
 * first byte of a connection doubles as its handshake. A response is
 * always encoded in its request's format, which keeps pipelined
 * request-order write-back format-correct and lets the router forward
 * mixed traffic byte-verbatim over one shard connection.
 *
 * The payload starts with a message-type byte (`WireMsg`) followed by
 * tag-encoded fields in strictly ascending tag order. Primitives:
 * strings are u32-LE length + raw bytes (snapshots ride as raw binary,
 * no base64), doubles are IEEE-754 little-endian bit patterns (exact
 * round-trip — re-serializing a decoded message preserves coalescing
 * identity and golden bytes), integers are fixed-width little-endian.
 *
 * Decoding is strict and bounds-checked, mirroring the JSON parser's
 * valid-request-or-typed-error contract: unknown tags, duplicate or
 * out-of-order tags, truncated fields, non-finite doubles, and every
 * semantic rule of `parsePlanRequest` (live kinds take no workload
 * fields, per-GPU kinds require a gpu, ...) come back as
 * `InvalidArgument`, never a crash. Framing-level damage (bad magic,
 * bad version, oversized or empty length) is not decodable at all —
 * `BinaryFramer` in net/framing.hpp poisons the connection instead,
 * because a binary stream cannot resynchronize past a broken header.
 *
 * docs/PROTOCOL.md is the normative spec for this layout; the tests in
 * tests/serve/test_wire.cpp pin the implementation to it.
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.hpp"
#include "serve/protocol.hpp"

namespace ftsim {

/** First byte of every binary frame (and of no JSON line). */
inline constexpr unsigned char kWireMagic = 0xF7;
/** Header bytes 1..2: "FT". */
inline constexpr unsigned char kWireMagic2 = 0x46;
inline constexpr unsigned char kWireMagic3 = 0x54;
/** Wire format version; bumped on any incompatible layout change. */
inline constexpr unsigned char kWireVersion = 0x01;
/** Fixed frame header size: magic(3) + version(1) + length(4). */
inline constexpr std::size_t kWireHeaderBytes = 8;

/** Payload message types (first payload byte). */
enum class WireMsg : unsigned char {
    Request = 0x01,        ///< A PlanRequest.
    Response = 0x02,       ///< A PlanResponse.
    ProtocolError = 0x03,  ///< A frame that decoded but never parsed
                           ///< into a request (id + message only).
};

/** One decoded binary payload. */
struct WireMessage {
    WireMsg type = WireMsg::Request;
    /** Valid when type == Request. */
    PlanRequest request;
    /** Valid when type == Response. */
    PlanResponse response;
    /** Valid when type == ProtocolError (id may be empty). */
    std::string errorId;
    std::string errorMessage;
};

/** Wraps @p payload in the 8-byte frame header. */
std::string wireFrame(std::string_view payload);

/** Encodes a request as one complete frame (header included). */
std::string encodeRequestFrame(const PlanRequest& request);

/** Encodes a response as one complete frame. Field selection mirrors
 *  `writePlanResponse` (per-kind), so decode + writePlanResponse
 *  reproduces the JSON path's bytes exactly. */
std::string encodeResponseFrame(const PlanResponse& response);

/** Encodes the binary analog of `writeProtocolError`. */
std::string encodeProtocolErrorFrame(const std::string& id,
                                     const std::string& message);

/**
 * Decodes one frame payload (header already stripped by the framer).
 * `InvalidArgument` on any malformed or semantically invalid payload;
 * never throws, never reads out of bounds.
 */
Result<WireMessage> decodeWirePayload(std::string_view payload);

/**
 * Validates an 8-byte frame header and returns the payload length.
 * `InvalidArgument` names the failure (bad magic, bad version, empty
 * payload) — the reasons `BinaryFramer` poisons a connection with.
 * Length *cap* enforcement is the framer's job (it knows the
 * configured limit); this only rejects length 0.
 */
Result<std::uint32_t> parseWireHeader(const unsigned char* header);

}  // namespace ftsim

#endif  // FTSIM_SERVE_WIRE_HPP
