#include "serve/protocol.hpp"

#include <cmath>
#include <cstdlib>

#include "common/base64.hpp"
#include "common/logging.hpp"

namespace ftsim {

namespace {

/** Internal parse failure; surfaces as InvalidArgument at the API. */
struct ParseErr {
    std::string msg;
};

[[noreturn]] void
bad(std::string msg)
{
    throw ParseErr{std::move(msg)};
}

// ---- Minimal JSON document model -------------------------------------

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    /** Insertion-ordered; duplicate keys are a parse error. */
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

const char*
typeName(JsonValue::Type t)
{
    switch (t) {
    case JsonValue::Type::Null: return "null";
    case JsonValue::Type::Bool: return "bool";
    case JsonValue::Type::Number: return "number";
    case JsonValue::Type::String: return "string";
    case JsonValue::Type::Array: return "array";
    case JsonValue::Type::Object: return "object";
    }
    return "?";
}

// ---- Recursive-descent parser ----------------------------------------

class JsonParser {
  public:
    explicit JsonParser(const std::string& text) : s_(text) {}

    JsonValue parseDocument()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != s_.size())
            bad(strCat("trailing characters at offset ", pos_));
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= s_.size())
            bad("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c)
    {
        if (pos_ >= s_.size() || s_[pos_] != c)
            bad(strCat("expected '", c, "' at offset ", pos_));
        ++pos_;
    }

    bool consumeLiteral(const char* lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{' || c == '[') {
            // Containers recurse; a hostile line of 100k brackets must
            // be a parse error, not a stack overflow (fuzz-pinned).
            if (depth_ >= kMaxDepth)
                bad(strCat("nesting deeper than ", kMaxDepth));
            ++depth_;
            JsonValue v = c == '{' ? parseObject() : parseArray();
            --depth_;
            return v;
        }
        if (c == '"') {
            JsonValue v;
            v.type = JsonValue::Type::String;
            v.string = parseString();
            return v;
        }
        if (consumeLiteral("true")) {
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeLiteral("false")) {
            JsonValue v;
            v.type = JsonValue::Type::Bool;
            return v;
        }
        if (consumeLiteral("null"))
            return JsonValue{};
        return parseNumber();
    }

    JsonValue parseObject()
    {
        JsonValue v;
        v.type = JsonValue::Type::Object;
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            if (v.find(key) != nullptr)
                bad(strCat("duplicate key \"", key, '"'));
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue parseArray()
    {
        JsonValue v;
        v.type = JsonValue::Type::Array;
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size())
                bad("unterminated string");
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                bad("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size())
                bad("unterminated escape");
            const char e = s_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': out += parseUnicodeEscape(); break;
            default: bad(strCat("bad escape '\\", e, "'"));
            }
        }
    }

    /** Reads exactly four hex digits of a \u escape. */
    unsigned parseHex4()
    {
        if (pos_ + 4 > s_.size())
            bad("truncated \\u escape");
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
                code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
            else
                bad("non-hex digit in \\u escape");
        }
        return code;
    }

    /**
     * Decodes \uXXXX to UTF-8. A UTF-16 high surrogate
     * (\uD800-\uDBFF) must be followed by a low surrogate
     * (\uDC00-\uDFFF); the pair combines into one astral-plane code
     * point encoded as four UTF-8 bytes. A lone or unpaired surrogate
     * is a parse error — encoding the surrogate code point itself
     * would produce invalid UTF-8 that escapeJson later re-emits as
     * garbage, violating the valid-request-or-typed-error invariant.
     */
    std::string parseUnicodeEscape()
    {
        unsigned code = parseHex4();
        if (code >= 0xDC00 && code <= 0xDFFF)
            bad("lone low surrogate in \\u escape");
        if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > s_.size() || s_[pos_] != '\\' ||
                s_[pos_ + 1] != 'u')
                bad("unpaired high surrogate in \\u escape");
            pos_ += 2;
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
                bad("unpaired high surrogate in \\u escape");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
        }
        std::string out;
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
        return out;
    }

    JsonValue parseNumber()
    {
        // Strict JSON number grammar:
        //   -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
        // Enforced here rather than deferred to strtod, which also
        // accepts "+5", ".5", "5.", "01", hex, and "inf"/"nan" —
        // spellings fmtNumber never emits and strict JSON rejects.
        const std::size_t start = pos_;
        const auto isDigit = [this](std::size_t p) {
            return p < s_.size() && s_[p] >= '0' && s_[p] <= '9';
        };
        if (peek() == '-')
            ++pos_;
        if (!isDigit(pos_))
            bad(strCat("unexpected character '",
                       pos_ < s_.size() ? s_[pos_] : s_[start],
                       "' at offset ", start));
        if (s_[pos_] == '0') {
            ++pos_;
            if (isDigit(pos_))
                bad(strCat("leading zero in number at offset ", start));
        } else {
            while (isDigit(pos_))
                ++pos_;
        }
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            if (!isDigit(pos_))
                bad(strCat("digit required after decimal point at "
                           "offset ",
                           start));
            while (isDigit(pos_))
                ++pos_;
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() &&
                (s_[pos_] == '+' || s_[pos_] == '-'))
                ++pos_;
            if (!isDigit(pos_))
                bad(strCat("digit required in exponent at offset ",
                           start));
            while (isDigit(pos_))
                ++pos_;
        }
        const std::string text = s_.substr(start, pos_ - start);
        char* end = nullptr;
        const double num = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() || !std::isfinite(num))
            bad(strCat("bad number \"", text, '"'));
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = num;
        return v;
    }

    /** No real request nests past ~3 levels; 64 is pure headroom. */
    static constexpr int kMaxDepth = 64;

    const std::string& s_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

// ---- Field extraction helpers ----------------------------------------

const JsonValue&
require(const JsonValue& obj, const char* key, JsonValue::Type type)
{
    const JsonValue* v = obj.find(key);
    if (v == nullptr)
        bad(strCat("missing required key \"", key, '"'));
    if (v->type != type)
        bad(strCat('"', key, "\" must be a ", typeName(type), ", got ",
                   typeName(v->type)));
    return *v;
}

const JsonValue*
optional(const JsonValue& obj, const char* key, JsonValue::Type type)
{
    const JsonValue* v = obj.find(key);
    if (v != nullptr && v->type != type)
        bad(strCat('"', key, "\" must be a ", typeName(type), ", got ",
                   typeName(v->type)));
    return v;
}

void
rejectUnknownKeys(const JsonValue& obj,
                  const std::vector<std::string>& known,
                  const char* where)
{
    for (const auto& [key, value] : obj.object) {
        bool found = false;
        for (const std::string& k : known)
            if (k == key)
                found = true;
        if (!found)
            bad(strCat("unknown key \"", key, "\" in ", where));
    }
}

Scenario
parseScenario(const JsonValue& obj)
{
    rejectUnknownKeys(obj,
                      {"preset", "model", "median_seq_len",
                       "length_sigma", "num_queries", "epochs", "sparse"},
                      "scenario");

    Scenario scenario = Scenario::gsMath();
    if (const JsonValue* preset =
            optional(obj, "preset", JsonValue::Type::String)) {
        if (preset->string == "gs_math")
            scenario = Scenario::gsMath();
        else if (preset->string == "commonsense15k")
            scenario = Scenario::commonsense15k();
        else if (preset->string == "open_orca")
            scenario = Scenario::openOrca();
        else
            bad(strCat("unknown scenario preset \"", preset->string,
                       '"'));
    }
    if (const JsonValue* model =
            optional(obj, "model", JsonValue::Type::String)) {
        if (model->string == "mixtral8x7b")
            scenario.withModel(ModelSpec::mixtral8x7b());
        else if (model->string == "blackmamba2p8b")
            scenario.withModel(ModelSpec::blackMamba2p8b());
        else
            bad(strCat("unknown model \"", model->string, '"'));
    }
    if (const JsonValue* seq =
            optional(obj, "median_seq_len", JsonValue::Type::Number)) {
        if (seq->number < 1.0 ||
            seq->number != std::floor(seq->number))
            bad("\"median_seq_len\" must be a positive integer");
        scenario.withMedianSeqLen(
            static_cast<std::size_t>(seq->number));
    }
    if (const JsonValue* sigma =
            optional(obj, "length_sigma", JsonValue::Type::Number))
        scenario.withLengthSigma(sigma->number);
    if (const JsonValue* queries =
            optional(obj, "num_queries", JsonValue::Type::Number))
        scenario.withNumQueries(queries->number);
    if (const JsonValue* epochs =
            optional(obj, "epochs", JsonValue::Type::Number))
        scenario.withEpochs(epochs->number);
    if (const JsonValue* sparse =
            optional(obj, "sparse", JsonValue::Type::Bool))
        scenario.withSparse(sparse->boolean);

    Result<Scenario> valid = scenario.validated();
    if (!valid)
        bad(valid.error().message);
    return scenario;
}

// ---- Writer helpers --------------------------------------------------

/** Doubles on the wire must round-trip exactly — a re-serialized
 *  request has to keep its canonical (coalescing) identity — so this
 *  is the same %.17g spelling the cache keys use. */
std::string
fmtNumber(double x)
{
    return strExact(x);
}

std::string
escapeJson(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xFF);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quoted(const std::string& s)
{
    return strCat('"', escapeJson(s), '"');
}

/** Protocol spelling of a preset model; empty for foreign specs. */
std::string
modelWireName(const ModelSpec& model)
{
    if (model.fingerprint() == ModelSpec::mixtral8x7b().fingerprint())
        return "mixtral8x7b";
    if (model.fingerprint() ==
        ModelSpec::blackMamba2p8b().fingerprint())
        return "blackmamba2p8b";
    return "";
}

bool
isPerGpuKind(QueryKind kind)
{
    return kind == QueryKind::MaxBatch ||
           kind == QueryKind::Throughput || kind == QueryKind::Report;
}

}  // namespace

bool
isLiveKind(QueryKind kind)
{
    return kind == QueryKind::Snapshot || kind == QueryKind::Fleet ||
           kind == QueryKind::LoadSnapshot || kind == QueryKind::Stats;
}

const char*
queryKindName(QueryKind kind)
{
    switch (kind) {
    case QueryKind::MaxBatch: return "max_batch";
    case QueryKind::Throughput: return "throughput";
    case QueryKind::CostTable: return "cost_table";
    case QueryKind::CheapestPlan: return "cheapest_plan";
    case QueryKind::Report: return "report";
    case QueryKind::Snapshot: return "snapshot";
    case QueryKind::Fleet: return "fleet";
    case QueryKind::LoadSnapshot: return "load_snapshot";
    case QueryKind::Stats: return "stats";
    }
    return "?";
}

Result<QueryKind>
parseQueryKind(const std::string& name)
{
    for (QueryKind kind :
         {QueryKind::MaxBatch, QueryKind::Throughput,
          QueryKind::CostTable, QueryKind::CheapestPlan,
          QueryKind::Report, QueryKind::Snapshot, QueryKind::Fleet,
          QueryKind::LoadSnapshot, QueryKind::Stats})
        if (name == queryKindName(kind))
            return kind;
    return Error{ErrorCode::InvalidArgument,
                 strCat("unknown query kind \"", name, '"')};
}

namespace {

/**
 * Length-prefixed element for key strings: wire names are arbitrary,
 * so a bare join would let "A40,H100" (one name) collide with
 * ["A40","H100"] (two) and coalesce distinct requests onto one
 * cached answer. The prefix makes the framing unambiguous.
 */
std::string
keyElem(const std::string& s)
{
    return strCat(s.size(), ':', s);
}

}  // namespace

std::string
PlanRequest::canonicalKey() const
{
    std::string key = strCat(queryKindName(query),
                             "|gpu=", keyElem(gpu), "|gpus=");
    for (const std::string& g : gpus)
        key += strCat(keyElem(g), ',');
    key += strCat('|', plannerKey());
    return key;
}

std::string
PlanRequest::plannerKey() const
{
    std::string key = strCat(scenario.canonicalKey(), "|rates=");
    for (const CloudOffering& rate : rates)
        key += strCat(keyElem(rate.gpuName), '@',
                      strExact(rate.dollarsPerHour), ';');
    return key;
}

Result<PlanRequest>
parsePlanRequest(const std::string& line)
{
    try {
        JsonParser parser(line);
        const JsonValue doc = parser.parseDocument();
        if (doc.type != JsonValue::Type::Object)
            bad("request must be a JSON object");
        rejectUnknownKeys(doc,
                          {"id", "tenant", "query", "gpu", "gpus",
                           "scenario", "rates", "snapshot"},
                          "request");

        PlanRequest req;
        if (const JsonValue* id =
                optional(doc, "id", JsonValue::Type::String))
            req.id = id->string;

        if (const JsonValue* tenant =
                optional(doc, "tenant", JsonValue::Type::String)) {
            // Empty would silently mean "untenanted" (quota-exempt);
            // make the caller say what they meant.
            if (tenant->string.empty())
                bad("\"tenant\" must not be empty (omit it instead)");
            req.tenant = tenant->string;
        }

        const JsonValue& query =
            require(doc, "query", JsonValue::Type::String);
        Result<QueryKind> kind = parseQueryKind(query.string);
        if (!kind)
            bad(kind.error().message);
        req.query = kind.value();

        if (isLiveKind(req.query)) {
            // Live queries are about the service, not a workload: any
            // of the workload-shaped keys on one is a confused caller.
            for (const char* key :
                 {"tenant", "gpu", "gpus", "scenario", "rates"})
                if (doc.find(key) != nullptr)
                    bad(strCat('"', key,
                               "\" is not valid for query \"",
                               query.string, '"'));
        }

        if (req.query == QueryKind::LoadSnapshot) {
            const JsonValue& payload =
                require(doc, "snapshot", JsonValue::Type::String);
            Result<std::string> raw = base64Decode(payload.string);
            if (!raw)
                bad(raw.error().message);
            req.snapshot = std::move(raw.value());
        } else if (doc.find("snapshot") != nullptr) {
            bad(strCat("\"snapshot\" is not valid for query \"",
                       query.string, '"'));
        }

        if (const JsonValue* gpu =
                optional(doc, "gpu", JsonValue::Type::String)) {
            if (!isPerGpuKind(req.query))
                bad(strCat("\"gpu\" is not valid for query \"",
                           query.string, "\"; use \"gpus\""));
            if (gpu->string.empty())
                bad("\"gpu\" must not be empty");
            req.gpu = gpu->string;
        } else if (isPerGpuKind(req.query)) {
            bad(strCat("query \"", query.string,
                       "\" requires a \"gpu\""));
        }

        if (const JsonValue* gpus =
                optional(doc, "gpus", JsonValue::Type::Array)) {
            if (isPerGpuKind(req.query))
                bad(strCat("\"gpus\" is not valid for query \"",
                           query.string, "\"; use \"gpu\""));
            for (const JsonValue& g : gpus->array) {
                if (g.type != JsonValue::Type::String ||
                    g.string.empty())
                    bad("\"gpus\" entries must be non-empty strings");
                req.gpus.push_back(g.string);
            }
        }

        if (const JsonValue* scenario =
                optional(doc, "scenario", JsonValue::Type::Object))
            req.scenario = parseScenario(*scenario);

        if (const JsonValue* rates =
                optional(doc, "rates", JsonValue::Type::Object)) {
            for (const auto& [name, rate] : rates->object) {
                if (rate.type != JsonValue::Type::Number ||
                    rate.number <= 0.0)
                    bad(strCat("rate for \"", name,
                               "\" must be a positive number"));
                req.rates.push_back({"user", name, rate.number});
            }
        }
        return req;
    } catch (const ParseErr& err) {
        return Error{ErrorCode::InvalidArgument,
                     strCat("bad request: ", err.msg)};
    }
}

std::string
writePlanRequest(const PlanRequest& request)
{
    std::string out = "{";
    if (!request.id.empty())
        out += strCat("\"id\":", quoted(request.id), ',');
    if (!request.tenant.empty())
        out += strCat("\"tenant\":", quoted(request.tenant), ',');
    out += strCat("\"query\":", quoted(queryKindName(request.query)));
    if (!request.gpu.empty())
        out += strCat(",\"gpu\":", quoted(request.gpu));
    if (!request.gpus.empty()) {
        out += ",\"gpus\":[";
        for (std::size_t i = 0; i < request.gpus.size(); ++i)
            out += strCat(i ? "," : "", quoted(request.gpus[i]));
        out += "]";
    }
    // Live kinds carry no workload fields; writing the default scenario
    // anyway would produce a line the (strict) parser rejects.
    if (isLiveKind(request.query)) {
        if (request.query == QueryKind::LoadSnapshot)
            out += strCat(",\"snapshot\":",
                          quoted(base64Encode(request.snapshot)));
        out += "}";
        return out;
    }
    // The scenario serializes as explicit scalars (no preset needed:
    // the scalars fully determine it). Only preset models have a wire
    // spelling; a foreign ModelSpec cannot round-trip and is omitted.
    out += ",\"scenario\":{";
    const std::string model = modelWireName(request.scenario.model);
    if (!model.empty())
        out += strCat("\"model\":", quoted(model), ',');
    out += strCat(
        "\"median_seq_len\":", request.scenario.medianSeqLen,
        ",\"length_sigma\":", fmtNumber(request.scenario.lengthSigma),
        ",\"num_queries\":", fmtNumber(request.scenario.numQueries),
        ",\"epochs\":", fmtNumber(request.scenario.epochs),
        ",\"sparse\":", request.scenario.sparse ? "true" : "false",
        "}");
    if (!request.rates.empty()) {
        out += ",\"rates\":{";
        for (std::size_t i = 0; i < request.rates.size(); ++i)
            out += strCat(i ? "," : "", quoted(request.rates[i].gpuName),
                          ':', fmtNumber(request.rates[i].dollarsPerHour));
        out += "}";
    }
    out += "}";
    return out;
}

std::string
writePlanResponse(const PlanResponse& response)
{
    std::string out = "{";
    if (!response.id.empty())
        out += strCat("\"id\":", quoted(response.id), ',');
    out += strCat("\"query\":", quoted(queryKindName(response.query)),
                  ",\"ok\":", response.ok ? "true" : "false");
    if (!response.ok) {
        out += strCat(",\"error\":", quoted(response.errorCode),
                      ",\"message\":", quoted(response.errorMessage),
                      "}");
        return out;
    }
    switch (response.query) {
    case QueryKind::MaxBatch:
    case QueryKind::Throughput:
        out += strCat(",\"value\":", fmtNumber(response.value));
        break;
    case QueryKind::CostTable:
    case QueryKind::CheapestPlan: {
        out += ",\"rows\":[";
        for (std::size_t i = 0; i < response.rows.size(); ++i) {
            const CostRow& row = response.rows[i];
            out += strCat(
                i ? "," : "", "{\"gpu\":", quoted(row.gpuName),
                ",\"mem_gb\":", fmtNumber(row.memGB),
                ",\"max_batch\":", row.maxBatchSize,
                ",\"qps\":", fmtNumber(row.throughputQps),
                ",\"usd_per_hour\":", fmtNumber(row.dollarsPerHour),
                ",\"total_usd\":", fmtNumber(row.totalDollars), "}");
        }
        out += "]";
        break;
    }
    case QueryKind::Report:
        out += strCat(",\"report\":", quoted(response.report));
        break;
    case QueryKind::Snapshot:
        // value = raw byte count, so a client can sanity-check the
        // decode without understanding the payload.
        out += strCat(",\"value\":", fmtNumber(
                          static_cast<double>(response.snapshot.size())),
                      ",\"snapshot\":",
                      quoted(base64Encode(response.snapshot)));
        break;
    case QueryKind::Fleet:
    case QueryKind::LoadSnapshot:
        // fleet: value = steps simulated (the thundering-herd counter
        // the fleet bench asserts over the wire); load_snapshot: value
        // = plans adopted from the payload. report = status text.
        out += strCat(",\"value\":", fmtNumber(response.value),
                      ",\"report\":", quoted(response.report));
        break;
    case QueryKind::Stats:
        // value = entry count; statsJson is already a serialized JSON
        // object (StatsSnapshot::toJson() or the router aggregate) and
        // embeds verbatim so shard payloads forward byte-identically.
        out += strCat(",\"value\":", fmtNumber(response.value),
                      ",\"stats\":",
                      response.statsJson.empty() ? "{}"
                                                 : response.statsJson);
        break;
    }
    out += "}";
    return out;
}

std::string
writeProtocolError(const std::string& id, const std::string& message)
{
    // No "query" field: the line never parsed, so echoing the default
    // kind would mislead clients that dispatch on it.
    std::string out = "{";
    if (!id.empty())
        out += strCat("\"id\":", quoted(id), ',');
    out += strCat("\"ok\":false,\"error\":\"",
                  errorCodeName(ErrorCode::InvalidArgument),
                  "\",\"message\":", quoted(message), "}");
    return out;
}

PlanResponse
errorResponse(const PlanRequest& request, const Error& error)
{
    PlanResponse response;
    response.id = request.id;
    response.query = request.query;
    response.ok = false;
    response.errorCode = errorCodeName(error.code);
    response.errorMessage = error.message;
    return response;
}

}  // namespace ftsim
