#!/usr/bin/env bash
# Tier-1 verification: exactly the recipe in ROADMAP.md.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .   # Default build type is Release (CMakeLists).
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Perf smoke: time the planner hot path and emit BENCH_planner.json as
# a build artifact. Gated against bench/baselines by bench_check below.
"$BUILD_DIR/bench/bench_perf_planner" "$BUILD_DIR/BENCH_planner.json"
echo "ci.sh: perf smoke artifact at $BUILD_DIR/BENCH_planner.json"

# Sweep perf smoke: time the vectorized 1..max_batch sweep against the
# per-batch compiled loop on warm plans and emit BENCH_sweep.json. The
# binary itself fails (non-zero exit) on any vectorized-vs-scalar
# divergence or a speedup below the 1.5x acceptance floor.
"$BUILD_DIR/bench/bench_sweep" "$BUILD_DIR/BENCH_sweep.json"
echo "ci.sh: sweep smoke artifact at $BUILD_DIR/BENCH_sweep.json"

# Serve perf smoke: replay the duplicate-heavy multi-tenant trace and
# emit BENCH_serve.json. The binary itself fails (non-zero exit) when
# the coalesced PlanService answers the trace slower than the naive
# one-planner-per-request baseline, or when any answer diverges.
"$BUILD_DIR/bench/bench_serve_load" "$BUILD_DIR/BENCH_serve.json"
echo "ci.sh: serve smoke artifact at $BUILD_DIR/BENCH_serve.json"

# Net soak: 64 concurrent socket connections replay the duplicate-heavy
# trace against a NetServer and emit BENCH_net.json. The binary fails
# when any wire answer diverges from the in-process PlanService or the
# fleet simulates more than distinct-config-many steps.
"$BUILD_DIR/bench/bench_net_load" "$BUILD_DIR/BENCH_net.json"
echo "ci.sh: net soak artifact at $BUILD_DIR/BENCH_net.json"

# Fleet soak: a consistent-hash router over 2 shard workers replays the
# trace and emits BENCH_fleet.json. The binary fails when any routed
# answer diverges from the in-process PlanService, the fleet simulates
# more than distinct-config-many steps, or a shard warm-started from
# the fleet's PlanRegistry snapshots compiles any plan.
"$BUILD_DIR/bench/bench_fleet_load" "$BUILD_DIR/BENCH_fleet.json"
echo "ci.sh: fleet soak artifact at $BUILD_DIR/BENCH_fleet.json"

# Chaos soak: 3 shards behind the router, shard 0 behind a
# deterministic fault proxy. The bench stalls the shard mid-flight,
# kills it, checks every doomed request fails over byte-exactly, then
# warm-rejoins a replacement and emits BENCH_chaos.json. The binary
# fails on any wrong byte, any Unavailable answer, a retry ledger that
# differs from the doomed set, or a rejoin that compiles plans.
"$BUILD_DIR/bench/bench_chaos_load" "$BUILD_DIR/BENCH_chaos.json"
echo "ci.sh: chaos soak artifact at $BUILD_DIR/BENCH_chaos.json"

# Wire-format smoke: the same pipelined trace in JSON lines and in
# binary frames against one warm NetServer, emitting BENCH_wire.json.
# The binary fails when any answer in either format diverges byte-wise
# from the in-process PlanService or the binary phase runs below 1.3x
# the JSON phase's request rate.
"$BUILD_DIR/bench/bench_wire" "$BUILD_DIR/BENCH_wire.json"
echo "ci.sh: wire smoke artifact at $BUILD_DIR/BENCH_wire.json"

# Bench-regression gate: fresh artifacts vs. checked-in baselines.
# Deterministic counters must match exactly; speedup ratios may drop
# at most 25% (override with BENCH_CHECK_TOLERANCE). Refresh after an
# intentional change: python3 tools/bench_check.py --update
python3 tools/bench_check.py --fresh-dir "$BUILD_DIR"
echo "ci.sh: bench regression gates green"

# Docs drift gate: docs/PROTOCOL.md is the normative wire spec, so it
# must mention every query kind, error code, and wire constant the
# sources actually ship (scraped from the authoritative switches in
# serve/protocol.cpp, common/result.cpp, and serve/wire.hpp).
python3 tools/check_docs.py

# Trend history: append this run's BENCH_*.json artifacts (stamped with
# the git SHA) to the append-only bench/history.jsonl ledger, so perf
# drift is visible across commits, not just against the last baseline.
python3 tools/bench_history.py --fresh-dir "$BUILD_DIR"

# Protocol smoke: the mixed example request file must parse cleanly —
# ftsim_serve exits non-zero on any protocol error. The run also dumps
# its registry snapshot, which must be valid JSON whose serve.requests
# counter equals the number of request lines in the file.
STATS_DUMP="$BUILD_DIR/ftsim_serve.stats.json"
"$BUILD_DIR/ftsim_serve" examples/serve_requests.jsonl \
    --stats-json "$STATS_DUMP" > /dev/null
EXAMPLE_LINES=$(grep -c '[^[:space:]]' examples/serve_requests.jsonl)
python3 - "$STATS_DUMP" "$EXAMPLE_LINES" <<'PY'
import json, sys
stats = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
got = stats.get("serve.requests")
assert got == want, f"serve.requests={got}, want {want}"
assert stats.get("cli.lines_read") == want, stats.get("cli.lines_read")
PY
echo "ci.sh: ftsim_serve answered examples/serve_requests.jsonl with zero protocol errors (--stats-json dump valid)"

# E2E golden: the governed service (bounded caches + tenant quotas)
# must answer the example + governance fixtures byte-exactly. The same
# golden is checked in-process by tests/integration/test_serve_e2e.cpp;
# this run pins the CLI to it, flags included.
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_serve" - --max-answers 4 --max-planners 2 \
      --tenant-rps 0.000001 2> /dev/null \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
echo "ci.sh: ftsim_serve output matches the e2e golden (quotas + eviction)"

# Socket golden e2e: the same fixtures through the ftsim_served daemon
# and the ftsim_client pipelining client must produce the same golden
# bytes — the TCP hop adds transport, never semantics. Port 0 lets the
# kernel pick (announced on the daemon's stderr); SIGTERM must drain
# gracefully and exit 0.
SERVED_LOG="$BUILD_DIR/ftsim_served.ci.log"
"$BUILD_DIR/ftsim_served" --port 0 --max-answers 4 --max-planners 2 \
    --tenant-rps 0.000001 2> "$SERVED_LOG" &
SERVED_PID=$!
# set -e aborts mid-block on any failure below; without the trap that
# would orphan the daemon (holding its port) past the script's death.
trap 'kill -TERM "$SERVED_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVED_LOG" 2>/dev/null && break
  sleep 0.1
done
SERVED_PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' \
              "$SERVED_LOG" | head -1)
[ -n "$SERVED_PORT" ] || { echo "ci.sh: ftsim_served did not start"; exit 1; }
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_client" - --port "$SERVED_PORT" --timeout-ms 30000 \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"   # Graceful drain must exit 0.
trap - EXIT
echo "ci.sh: ftsim_served/ftsim_client socket e2e matches the golden (clean SIGTERM drain)"

# Binary wire golden e2e: the same governed fixtures as binary frames
# (ftsim_client --wire binary encodes each parsed line as a frame and
# prints the decoded answers through the JSON writer). Token buckets
# are stateful, so the replay gets its own daemon — and must produce
# the SAME golden bytes: the wire format changes encoding, never
# semantics. See docs/PROTOCOL.md for the frame layout.
WIRED_LOG="$BUILD_DIR/ftsim_served_wire.ci.log"
"$BUILD_DIR/ftsim_served" --port 0 --max-answers 4 --max-planners 2 \
    --tenant-rps 0.000001 2> "$WIRED_LOG" &
WIRED_PID=$!
trap 'kill -TERM "$WIRED_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "$WIRED_LOG" 2>/dev/null && break
  sleep 0.1
done
WIRED_PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' \
             "$WIRED_LOG" | head -1)
[ -n "$WIRED_PORT" ] \
  || { echo "ci.sh: binary-wire daemon did not start"; exit 1; }
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_client" - --port "$WIRED_PORT" --timeout-ms 30000 \
      --wire binary \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
kill -TERM "$WIRED_PID"
wait "$WIRED_PID"
trap - EXIT
echo "ci.sh: binary wire replay matches the SAME golden byte-for-byte"

# Router golden e2e: the same client bytes through ftsim_router and two
# real ftsim_served shard processes. The router must be protocol-
# invisible: the ungoverned example requests answer byte-exactly the
# golden prefix (governed fixtures are excluded — per-shard token
# buckets are not portable across sharding). Afterwards a third shard
# warm-starts from a busy shard's snapshot over the wire, and all four
# processes must drain cleanly on SIGTERM.
SHARD1_LOG="$BUILD_DIR/ftsim_shard1.ci.log"
SHARD2_LOG="$BUILD_DIR/ftsim_shard2.ci.log"
ROUTER_LOG="$BUILD_DIR/ftsim_router.ci.log"
WARMED_LOG="$BUILD_DIR/ftsim_warmed.ci.log"
"$BUILD_DIR/ftsim_served" --port 0 2> "$SHARD1_LOG" &
SHARD1_PID=$!
"$BUILD_DIR/ftsim_served" --port 0 2> "$SHARD2_LOG" &
SHARD2_PID=$!
trap 'kill -TERM "$SHARD1_PID" "$SHARD2_PID" 2>/dev/null || true' EXIT
port_from_log() {
  for _ in $(seq 1 100); do
    grep -q "listening on" "$1" 2>/dev/null && break
    sleep 0.1
  done
  sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$1" | head -1
}
SHARD1_PORT=$(port_from_log "$SHARD1_LOG")
SHARD2_PORT=$(port_from_log "$SHARD2_LOG")
[ -n "$SHARD1_PORT" ] && [ -n "$SHARD2_PORT" ] \
  || { echo "ci.sh: fleet shards did not start"; exit 1; }
"$BUILD_DIR/ftsim_router" --port 0 \
    --shard "127.0.0.1:$SHARD1_PORT" --shard "127.0.0.1:$SHARD2_PORT" \
    2> "$ROUTER_LOG" &
ROUTER_PID=$!
trap 'kill -TERM "$ROUTER_PID" "$SHARD1_PID" "$SHARD2_PID" 2>/dev/null || true' EXIT
ROUTER_PORT=$(port_from_log "$ROUTER_LOG")
[ -n "$ROUTER_PORT" ] || { echo "ci.sh: ftsim_router did not start"; exit 1; }
UNGOVERNED_LINES=$(grep -c '[^[:space:]]' examples/serve_requests.jsonl)
"$BUILD_DIR/ftsim_client" examples/serve_requests.jsonl \
    --port "$ROUTER_PORT" --timeout-ms 30000 \
  | diff -u <(head -n "$UNGOVERNED_LINES" \
              tests/integration/golden_serve_e2e.jsonl) -
# Live stats scrape: one {"query":"stats"} line against the running
# fleet must return the router's own registry plus a namespaced piece
# per shard, and the scraped counters must agree with what the golden
# replay just pinned: router.forwarded equals the replayed line count
# (the scrape itself is never counted as forwarded), and the shards'
# serve.requests sum to the same replay — plus one stats probe each,
# because a live scrape observes itself.
FLEET_STATS="$BUILD_DIR/fleet_stats.ci.json"
echo '{"query":"stats"}' \
  | "$BUILD_DIR/ftsim_client" - --port "$ROUTER_PORT" --timeout-ms 30000 \
  > "$FLEET_STATS"
python3 - "$FLEET_STATS" "$UNGOVERNED_LINES" <<'PY'
import json, sys
resp = json.load(open(sys.argv[1]))
want = int(sys.argv[2])
assert resp["ok"] is True, resp
stats = resp["stats"]
fwd = stats["router"]["router.forwarded"]
assert fwd == want, f"router.forwarded={fwd}, want {want}"
shards = stats["shards"]
alive = {name: s for name, s in shards.items() if s is not None}
assert len(alive) == 2, sorted(shards)
total = sum(s["serve.requests"] for s in alive.values())
assert total == want + len(alive), f"shard serve.requests sum={total}"
PY
echo "ci.sh: live fleet stats scrape agrees with the golden replay counters"
# Binary frames through the fleet: the router forwards frames byte-
# verbatim to the shards, so the binary replay of the same ungoverned
# fixtures must decode to the same golden prefix. (After the stats
# scrape on purpose — the scrape pinned the JSON-replay counters.)
"$BUILD_DIR/ftsim_client" examples/serve_requests.jsonl \
    --port "$ROUTER_PORT" --timeout-ms 30000 --wire binary \
  | diff -u <(head -n "$UNGOVERNED_LINES" \
              tests/integration/golden_serve_e2e.jsonl) -
echo "ci.sh: binary wire replay through the router matches the golden prefix"
# Warm start over the wire: a fresh shard pulls shard 1's PlanRegistry
# snapshot at boot and must announce the loaded plans.
"$BUILD_DIR/ftsim_served" --port 0 --warm-from "127.0.0.1:$SHARD1_PORT" \
    2> "$WARMED_LOG" &
WARMED_PID=$!
trap 'kill -TERM "$WARMED_PID" "$ROUTER_PID" "$SHARD1_PID" "$SHARD2_PID" 2>/dev/null || true' EXIT
WARMED_PORT=$(port_from_log "$WARMED_LOG")
[ -n "$WARMED_PORT" ] || { echo "ci.sh: warm-started shard did not start"; exit 1; }
grep -q "warm-started" "$WARMED_LOG" \
  || { echo "ci.sh: warm start did not load any plans"; exit 1; }
kill -TERM "$WARMED_PID" "$ROUTER_PID" "$SHARD1_PID" "$SHARD2_PID"
wait "$WARMED_PID" && wait "$ROUTER_PID" \
  && wait "$SHARD1_PID" && wait "$SHARD2_PID"   # All drain to exit 0.
trap - EXIT
echo "ci.sh: ftsim_router fleet e2e matches the golden prefix (warm start + clean drains)"

# Governed single-shard fleet: with exactly one shard the per-shard
# token buckets and caches see every request, so the FULL governed
# golden (quotas + eviction included) must survive the router hop
# byte-exactly — the strongest router-is-invisible check we can state.
GOV_SHARD_LOG="$BUILD_DIR/ftsim_govshard.ci.log"
GOV_ROUTER_LOG="$BUILD_DIR/ftsim_govrouter.ci.log"
"$BUILD_DIR/ftsim_served" --port 0 --max-answers 4 --max-planners 2 \
    --tenant-rps 0.000001 2> "$GOV_SHARD_LOG" &
GOV_SHARD_PID=$!
trap 'kill -TERM "$GOV_SHARD_PID" 2>/dev/null || true' EXIT
GOV_SHARD_PORT=$(port_from_log "$GOV_SHARD_LOG")
[ -n "$GOV_SHARD_PORT" ] \
  || { echo "ci.sh: governed shard did not start"; exit 1; }
"$BUILD_DIR/ftsim_router" --port 0 \
    --shard "127.0.0.1:$GOV_SHARD_PORT" 2> "$GOV_ROUTER_LOG" &
GOV_ROUTER_PID=$!
trap 'kill -TERM "$GOV_ROUTER_PID" "$GOV_SHARD_PID" 2>/dev/null || true' EXIT
GOV_ROUTER_PORT=$(port_from_log "$GOV_ROUTER_LOG")
[ -n "$GOV_ROUTER_PORT" ] \
  || { echo "ci.sh: governed router did not start"; exit 1; }
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_client" - --port "$GOV_ROUTER_PORT" --timeout-ms 30000 \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
kill -TERM "$GOV_ROUTER_PID" "$GOV_SHARD_PID"
wait "$GOV_ROUTER_PID" && wait "$GOV_SHARD_PID"
trap - EXIT
echo "ci.sh: governed single-shard fleet matches the FULL golden through the router"

# Self-healing e2e: kill -9 a live shard under a router started with
# --respawn. The router must fork a replacement ftsim_served on the
# dead shard's endpoint, warm-start it from the survivor's snapshot,
# report healed=1 respawned=1 in the fleet query, and keep answering
# the golden prefix byte-exactly. Everything drains cleanly.
HEAL1_LOG="$BUILD_DIR/ftsim_heal1.ci.log"
HEAL2_LOG="$BUILD_DIR/ftsim_heal2.ci.log"
HEAL_ROUTER_LOG="$BUILD_DIR/ftsim_healrouter.ci.log"
"$BUILD_DIR/ftsim_served" --port 0 2> "$HEAL1_LOG" &
HEAL1_PID=$!
"$BUILD_DIR/ftsim_served" --port 0 2> "$HEAL2_LOG" &
HEAL2_PID=$!
trap 'kill -TERM "$HEAL1_PID" "$HEAL2_PID" 2>/dev/null || true' EXIT
HEAL1_PORT=$(port_from_log "$HEAL1_LOG")
HEAL2_PORT=$(port_from_log "$HEAL2_LOG")
[ -n "$HEAL1_PORT" ] && [ -n "$HEAL2_PORT" ] \
  || { echo "ci.sh: heal shards did not start"; exit 1; }
"$BUILD_DIR/ftsim_router" --port 0 \
    --shard "127.0.0.1:$HEAL1_PORT" --shard "127.0.0.1:$HEAL2_PORT" \
    --retry-budget 2 --reconnect-backoff-ms 50 \
    --reconnect-backoff-max-ms 500 --heal-timeout-ms 5000 \
    --respawn "$BUILD_DIR/ftsim_served" 2> "$HEAL_ROUTER_LOG" &
HEAL_ROUTER_PID=$!
trap 'kill -TERM "$HEAL_ROUTER_PID" "$HEAL1_PID" "$HEAL2_PID" 2>/dev/null || true' EXIT
HEAL_ROUTER_PORT=$(port_from_log "$HEAL_ROUTER_LOG")
[ -n "$HEAL_ROUTER_PORT" ] \
  || { echo "ci.sh: healing router did not start"; exit 1; }
"$BUILD_DIR/ftsim_client" examples/serve_requests.jsonl \
    --port "$HEAL_ROUTER_PORT" --timeout-ms 30000 \
  | diff -u <(head -n "$UNGOVERNED_LINES" \
              tests/integration/golden_serve_e2e.jsonl) -
kill -KILL "$HEAL1_PID"
wait "$HEAL1_PID" || true   # SIGKILL: non-zero by design.
HEALED=""
for _ in $(seq 1 100); do
  if echo '{"query":"fleet"}' \
      | "$BUILD_DIR/ftsim_client" - --port "$HEAL_ROUTER_PORT" \
          --timeout-ms 2000 2> /dev/null \
      | grep -q 'healed=1 respawned=1'; then
    HEALED=yes
    break
  fi
  sleep 0.1
done
[ -n "$HEALED" ] \
  || { echo "ci.sh: router did not respawn+heal the killed shard"; exit 1; }
# The replacement (the router's own child) must answer the same bytes.
"$BUILD_DIR/ftsim_client" examples/serve_requests.jsonl \
    --port "$HEAL_ROUTER_PORT" --timeout-ms 30000 \
  | diff -u <(head -n "$UNGOVERNED_LINES" \
              tests/integration/golden_serve_e2e.jsonl) -
kill -TERM "$HEAL_ROUTER_PID" "$HEAL2_PID"
wait "$HEAL_ROUTER_PID" && wait "$HEAL2_PID"   # Router reaps its child.
trap - EXIT
echo "ci.sh: kill -9 shard healed via respawn + warm rejoin, answers stayed golden"

# Sanitizer job: rebuild the library + tests with ASan/UBSan and run
# the serving, protocol-fuzz, LRU, histogram, network, router, and
# snapshot suites — the fuzz corpus under sanitizers is the ISSUE-4
# "no UB on hostile input" gate, the Net* suites put real sockets
# (framing fuzz included) under the same instrumentation, and the
# RegistrySnapshot*/Base64* suites cover the ISSUE-6 hostile-snapshot
# bytes (truncation/corruption sweeps). Router* also matches the
# RouterHeal kill/rejoin suite, FaultProxy* puts the chaos proxy's
# byte accounting under the same instrumentation, and StatsRegistry*
# (with the Histogram* concurrency suites) is the ISSUE-8 16-thread
# registration/publish/snapshot herd. StepPlanSweep* runs the ISSUE-9
# vectorized-sweep identity suite (kernel-major plane indexing) under
# the same instrumentation. Wire* adds the ISSUE-10 binary codec,
# framing, and frame-fuzz suites (hostile length prefixes and tag
# soup must be typed errors, never UB); Net*/Router* already match
# the NetWireE2E/RouterWire socket suites.
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DFTSIM_SANITIZE=ON \
      -DFTSIM_BUILD_BENCH=OFF -DFTSIM_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$SAN_DIR" -j --target ftsim_tests
"$SAN_DIR/ftsim_tests" \
    --gtest_filter='Protocol*:PlanService*:LruCache*:ServeE2E*:Histogram*:Net*:Router*:HashRing*:RegistrySnapshot*:Base64*:FaultProxy*:StatsRegistry*:StepPlanSweep*:Wire*'
echo "ci.sh: ASan+UBSan serve/fuzz/net/fleet/stats suites green"

# Optional TSan job: the stats registry's whole point is lock-free
# publishing on hot paths, so put the herd and histogram quantile
# suites under ThreadSanitizer when the toolchain supports it. Probe
# first — some images ship compilers without TSan runtimes — and skip
# with a note rather than fail when the probe cannot link or run.
TSAN_PROBE_DIR=$(mktemp -d)
if echo 'int main() { return 0; }' > "$TSAN_PROBE_DIR/probe.cpp" \
   && c++ -fsanitize=thread "$TSAN_PROBE_DIR/probe.cpp" \
        -o "$TSAN_PROBE_DIR/probe" 2> /dev/null \
   && "$TSAN_PROBE_DIR/probe" 2> /dev/null; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DFTSIM_TSAN=ON \
        -DFTSIM_BUILD_BENCH=OFF -DFTSIM_BUILD_EXAMPLES=OFF > /dev/null
  cmake --build "$TSAN_DIR" -j --target ftsim_tests
  "$TSAN_DIR/ftsim_tests" \
      --gtest_filter='StatsRegistry*:Histogram*'
  echo "ci.sh: TSan stats-registry/histogram herd suites green"
else
  echo "ci.sh: TSan unavailable in this toolchain, skipping (probe failed)"
fi
rm -rf "$TSAN_PROBE_DIR"

echo "ci.sh: all green"
