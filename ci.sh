#!/usr/bin/env bash
# Tier-1 verification: exactly the recipe in ROADMAP.md.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

echo "ci.sh: all green"
