#!/usr/bin/env bash
# Tier-1 verification: exactly the recipe in ROADMAP.md.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .   # Default build type is Release (CMakeLists).
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Perf smoke: time the planner hot path and emit BENCH_planner.json as
# a build artifact. Gated against bench/baselines by bench_check below.
"$BUILD_DIR/bench/bench_perf_planner" "$BUILD_DIR/BENCH_planner.json"
echo "ci.sh: perf smoke artifact at $BUILD_DIR/BENCH_planner.json"

# Serve perf smoke: replay the duplicate-heavy multi-tenant trace and
# emit BENCH_serve.json. The binary itself fails (non-zero exit) when
# the coalesced PlanService answers the trace slower than the naive
# one-planner-per-request baseline, or when any answer diverges.
"$BUILD_DIR/bench/bench_serve_load" "$BUILD_DIR/BENCH_serve.json"
echo "ci.sh: serve smoke artifact at $BUILD_DIR/BENCH_serve.json"

# Net soak: 64 concurrent socket connections replay the duplicate-heavy
# trace against a NetServer and emit BENCH_net.json. The binary fails
# when any wire answer diverges from the in-process PlanService or the
# fleet simulates more than distinct-config-many steps.
"$BUILD_DIR/bench/bench_net_load" "$BUILD_DIR/BENCH_net.json"
echo "ci.sh: net soak artifact at $BUILD_DIR/BENCH_net.json"

# Bench-regression gate: fresh artifacts vs. checked-in baselines.
# Deterministic counters must match exactly; speedup ratios may drop
# at most 25% (override with BENCH_CHECK_TOLERANCE). Refresh after an
# intentional change: python3 tools/bench_check.py --update
python3 tools/bench_check.py --fresh-dir "$BUILD_DIR"
echo "ci.sh: bench regression gates green"

# Protocol smoke: the mixed example request file must parse cleanly —
# ftsim_serve exits non-zero on any protocol error.
"$BUILD_DIR/ftsim_serve" examples/serve_requests.jsonl > /dev/null
echo "ci.sh: ftsim_serve answered examples/serve_requests.jsonl with zero protocol errors"

# E2E golden: the governed service (bounded caches + tenant quotas)
# must answer the example + governance fixtures byte-exactly. The same
# golden is checked in-process by tests/integration/test_serve_e2e.cpp;
# this run pins the CLI to it, flags included.
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_serve" - --max-answers 4 --max-planners 2 \
      --tenant-rps 0.000001 2> /dev/null \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
echo "ci.sh: ftsim_serve output matches the e2e golden (quotas + eviction)"

# Socket golden e2e: the same fixtures through the ftsim_served daemon
# and the ftsim_client pipelining client must produce the same golden
# bytes — the TCP hop adds transport, never semantics. Port 0 lets the
# kernel pick (announced on the daemon's stderr); SIGTERM must drain
# gracefully and exit 0.
SERVED_LOG="$BUILD_DIR/ftsim_served.ci.log"
"$BUILD_DIR/ftsim_served" --port 0 --max-answers 4 --max-planners 2 \
    --tenant-rps 0.000001 2> "$SERVED_LOG" &
SERVED_PID=$!
# set -e aborts mid-block on any failure below; without the trap that
# would orphan the daemon (holding its port) past the script's death.
trap 'kill -TERM "$SERVED_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVED_LOG" 2>/dev/null && break
  sleep 0.1
done
SERVED_PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' \
              "$SERVED_LOG" | head -1)
[ -n "$SERVED_PORT" ] || { echo "ci.sh: ftsim_served did not start"; exit 1; }
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_client" - --port "$SERVED_PORT" \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
kill -TERM "$SERVED_PID"
wait "$SERVED_PID"   # Graceful drain must exit 0.
trap - EXIT
echo "ci.sh: ftsim_served/ftsim_client socket e2e matches the golden (clean SIGTERM drain)"

# Sanitizer job: rebuild the library + tests with ASan/UBSan and run
# the serving, protocol-fuzz, LRU, histogram, and network suites — the
# fuzz corpus under sanitizers is the ISSUE-4 "no UB on hostile input"
# gate, and the Net* suites put real sockets (framing fuzz included)
# under the same instrumentation.
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DFTSIM_SANITIZE=ON \
      -DFTSIM_BUILD_BENCH=OFF -DFTSIM_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$SAN_DIR" -j --target ftsim_tests
"$SAN_DIR/ftsim_tests" \
    --gtest_filter='Protocol*:PlanService*:LruCache*:ServeE2E*:Histogram*:Net*'
echo "ci.sh: ASan+UBSan serve/fuzz/net suites green"

echo "ci.sh: all green"
