#!/usr/bin/env bash
# Tier-1 verification: exactly the recipe in ROADMAP.md.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .   # Default build type is Release (CMakeLists).
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Perf smoke: time the planner hot path and emit BENCH_planner.json as
# a build artifact. Trajectory tracking only — no thresholds (yet).
"$BUILD_DIR/bench/bench_perf_planner" "$BUILD_DIR/BENCH_planner.json"
echo "ci.sh: perf smoke artifact at $BUILD_DIR/BENCH_planner.json"

# Serve perf smoke: replay the duplicate-heavy multi-tenant trace and
# emit BENCH_serve.json. The binary itself fails (non-zero exit) when
# the coalesced PlanService answers the trace slower than the naive
# one-planner-per-request baseline, or when any answer diverges.
"$BUILD_DIR/bench/bench_serve_load" "$BUILD_DIR/BENCH_serve.json"
echo "ci.sh: serve smoke artifact at $BUILD_DIR/BENCH_serve.json"

# Protocol smoke: the mixed example request file must parse cleanly —
# ftsim_serve exits non-zero on any protocol error.
"$BUILD_DIR/ftsim_serve" examples/serve_requests.jsonl > /dev/null
echo "ci.sh: ftsim_serve answered examples/serve_requests.jsonl with zero protocol errors"

echo "ci.sh: all green"
