#!/usr/bin/env bash
# Tier-1 verification: exactly the recipe in ROADMAP.md.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .   # Default build type is Release (CMakeLists).
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Perf smoke: time the planner hot path and emit BENCH_planner.json as
# a build artifact. Trajectory tracking only — no thresholds (yet).
"$BUILD_DIR/bench/bench_perf_planner" "$BUILD_DIR/BENCH_planner.json"
echo "ci.sh: perf smoke artifact at $BUILD_DIR/BENCH_planner.json"

# Serve perf smoke: replay the duplicate-heavy multi-tenant trace and
# emit BENCH_serve.json. The binary itself fails (non-zero exit) when
# the coalesced PlanService answers the trace slower than the naive
# one-planner-per-request baseline, or when any answer diverges.
"$BUILD_DIR/bench/bench_serve_load" "$BUILD_DIR/BENCH_serve.json"
echo "ci.sh: serve smoke artifact at $BUILD_DIR/BENCH_serve.json"

# Protocol smoke: the mixed example request file must parse cleanly —
# ftsim_serve exits non-zero on any protocol error.
"$BUILD_DIR/ftsim_serve" examples/serve_requests.jsonl > /dev/null
echo "ci.sh: ftsim_serve answered examples/serve_requests.jsonl with zero protocol errors"

# E2E golden: the governed service (bounded caches + tenant quotas)
# must answer the example + governance fixtures byte-exactly. The same
# golden is checked in-process by tests/integration/test_serve_e2e.cpp;
# this run pins the CLI to it, flags included.
cat examples/serve_requests.jsonl examples/serve_requests_governed.jsonl \
  | "$BUILD_DIR/ftsim_serve" - --max-answers 4 --max-planners 2 \
      --tenant-rps 0.000001 2> /dev/null \
  | diff -u tests/integration/golden_serve_e2e.jsonl -
echo "ci.sh: ftsim_serve output matches the e2e golden (quotas + eviction)"

# Sanitizer job: rebuild the library + tests with ASan/UBSan and run
# the serving, protocol-fuzz, LRU, and histogram suites — the fuzz
# corpus under sanitizers is the ISSUE-4 "no UB on hostile input" gate.
SAN_DIR="${BUILD_DIR}-asan"
cmake -B "$SAN_DIR" -S . -DFTSIM_SANITIZE=ON \
      -DFTSIM_BUILD_BENCH=OFF -DFTSIM_BUILD_EXAMPLES=OFF > /dev/null
cmake --build "$SAN_DIR" -j --target ftsim_tests
"$SAN_DIR/ftsim_tests" \
    --gtest_filter='Protocol*:PlanService*:LruCache*:ServeE2E*:Histogram*'
echo "ci.sh: ASan+UBSan serve/fuzz suites green"

echo "ci.sh: all green"
