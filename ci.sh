#!/usr/bin/env bash
# Tier-1 verification: exactly the recipe in ROADMAP.md.
# Usage: ./ci.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")"

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .   # Default build type is Release (CMakeLists).
cmake --build "$BUILD_DIR" -j
(cd "$BUILD_DIR" && ctest --output-on-failure -j)

# Perf smoke: time the planner hot path and emit BENCH_planner.json as
# a build artifact. Trajectory tracking only — no thresholds (yet).
"$BUILD_DIR/bench/bench_perf_planner" "$BUILD_DIR/BENCH_planner.json"
echo "ci.sh: perf smoke artifact at $BUILD_DIR/BENCH_planner.json"

echo "ci.sh: all green"
