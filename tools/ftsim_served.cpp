/**
 * @file
 * `ftsim_served` — the plan service behind a TCP socket.
 *
 * Where `ftsim_serve` answers a request *file*, `ftsim_served` is the
 * deployable daemon: it binds a TCP port and serves the same JSON-lines
 * protocol to many concurrent connections through the poll-based
 * `NetServer` (src/net/server.hpp). Per connection, responses come
 * back in request order, so clients may pipeline (`ftsim_client`
 * does); across connections the service coalesces duplicates exactly
 * as in-process callers see — N connections asking the same question
 * cost one execution.
 *
 * Governance flags mirror `ftsim_serve` (they configure the same
 * `ServiceConfig`): `--max-answers`/`--max-planners` bound the LRU
 * caches, `--tenant-*` gate admission per request tenant, quota
 * overflow answers `{"ok":false,"error":"RateLimited",...}` on the
 * wire. Front-end knobs are new: `--host`/`--port` (port 0 = kernel-
 * assigned, announced on stderr — how scripts avoid port collisions),
 * `--max-connections` (beyond it, connects wait in the TCP backlog),
 * `--idle-timeout` (seconds; quiet connections are closed), and
 * `--max-line` (bytes; longer request lines answer a protocol error).
 *
 * Shutdown: SIGTERM or SIGINT triggers a graceful drain — stop
 * accepting, stop reading, answer and flush everything already
 * admitted, then exit 0 with a stats summary on stderr. The summary
 * includes per-connection and per-tenant service counters.
 *
 * Usage: ftsim_served [--host H] [--port P] [--max-connections N]
 *                     [--idle-timeout SEC] [--max-line BYTES]
 *                     [--workers N] [--max-answers N] [--max-planners N]
 *                     [--tenant-inflight N] [--tenant-rps X]
 *                     [--tenant-burst X] [--max-tenants N]
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hpp"
#include "net/server.hpp"

using namespace ftsim;

namespace {

std::atomic<NetServer*> g_server{nullptr};

/** SIGTERM/SIGINT: requestStop is async-signal-safe by contract
 *  (atomic store + one write(2), no locks). */
void
onSignal(int)
{
    if (NetServer* server = g_server.load())
        server->requestStop();
}

[[noreturn]] void
usage(const std::string& problem)
{
    std::cerr
        << "ftsim_served: " << problem << "\n"
        << "usage: ftsim_served [--host H] [--port P]"
           " [--max-connections N]\n"
        << "                    [--idle-timeout SEC] [--max-line BYTES]\n"
        << "                    [--workers N] [--max-answers N]"
           " [--max-planners N]\n"
        << "                    [--tenant-inflight N] [--tenant-rps X]\n"
        << "                    [--tenant-burst X] [--max-tenants N]\n";
    std::exit(2);
}

double
numberArg(const std::string& flag, const char* text)
{
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(value) ||
        value < 0.0)
        usage(strCat(flag, " needs a non-negative finite number, got '",
                     text, "'"));
    return value;
}

}  // namespace

int
main(int argc, char** argv)
{
    NetServerConfig config;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(strCat(arg, " needs a value"));
            return argv[++i];
        };
        if (arg == "--host") {
            config.host = value();
        } else if (arg == "--port") {
            // Range-check before the uint16_t cast: --port 70000 must
            // be an error, not a silent bind of port 4464.
            const double port = numberArg(arg, value());
            if (port > 65535.0)
                usage(strCat("--port must be 0..65535, got ", port));
            config.port = static_cast<std::uint16_t>(port);
        }
        else if (arg == "--max-connections")
            config.maxConnections =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--idle-timeout")
            config.idleTimeoutMs = numberArg(arg, value()) * 1000.0;
        else if (arg == "--max-line")
            config.maxLineBytes =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--workers")
            config.service.workers =
                static_cast<unsigned>(numberArg(arg, value()));
        else if (arg == "--max-answers")
            config.service.maxAnswers =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--max-planners")
            config.service.maxPlanners =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--tenant-inflight")
            config.service.tenantMaxInflight =
                static_cast<std::uint64_t>(numberArg(arg, value()));
        else if (arg == "--tenant-rps")
            config.service.tenantRps = numberArg(arg, value());
        else if (arg == "--tenant-burst")
            config.service.tenantBurst = numberArg(arg, value());
        else if (arg == "--max-tenants")
            config.service.maxTenants =
                static_cast<std::size_t>(numberArg(arg, value()));
        else
            usage(strCat("unknown flag ", arg));
    }

    // Socket fds carry the protocol; sim warnings go through stderr.
    Logger::instance().setLevel(LogLevel::Error);

    const std::string host = config.host;
    NetServer server(std::move(config));
    Result<bool> bound = server.bindListener();
    if (!bound) {
        std::cerr << "ftsim_served: " << bound.error().message << '\n';
        return 2;
    }

    g_server.store(&server);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    // Scripts parse this line for the kernel-assigned port (--port 0).
    std::cerr << "ftsim_served: listening on " << host << ':'
              << server.port() << std::endl;
    server.run();
    g_server.store(nullptr);

    const NetServerStats net = server.stats();
    const ServiceStats stats = server.service().stats();
    std::cerr << "ftsim_served: drained; " << net.connectionsAccepted
              << " connections, " << net.requests << " requests, "
              << net.responses << " responses, " << net.protocolErrors
              << " protocol errors (" << net.oversizedLines
              << " oversized), " << net.idleClosed << " idle-closed\n"
              << "ftsim_served: coalesced=" << stats.coalesced
              << " executed=" << stats.executed
              << " rate_limited=" << stats.rateLimited
              << " planners=" << stats.plannersCreated
              << " steps_simulated=" << stats.stepsSimulated
              << " latency p50=" << stats.p50LatencyMs
              << "ms p99=" << stats.p99LatencyMs << "ms\n";
    for (const auto& [source, row] : stats.sources)
        std::cerr << "ftsim_served: connection " << source
                  << ": requests=" << row.requests
                  << " coalesced=" << row.coalesced
                  << " rate_limited=" << row.rateLimited << '\n';
    for (const auto& [tenant, row] : stats.tenants)
        std::cerr << "ftsim_served: tenant " << tenant
                  << ": admitted=" << row.admitted
                  << " rejected_inflight=" << row.rejectedInflight
                  << " rejected_rate=" << row.rejectedRate << '\n';
    return 0;
}
