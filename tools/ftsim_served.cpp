/**
 * @file
 * `ftsim_served` — the plan service behind a TCP socket.
 *
 * Where `ftsim_serve` answers a request *file*, `ftsim_served` is the
 * deployable daemon: it binds a TCP port and serves the same JSON-lines
 * protocol to many concurrent connections through the poll-based
 * `NetServer` (src/net/server.hpp). Per connection, responses come
 * back in request order, so clients may pipeline (`ftsim_client`
 * does); across connections the service coalesces duplicates exactly
 * as in-process callers see — N connections asking the same question
 * cost one execution.
 *
 * Governance flags mirror `ftsim_serve` (they configure the same
 * `ServiceConfig`): `--max-answers`/`--max-planners` bound the LRU
 * caches, `--tenant-*` gate admission per request tenant, quota
 * overflow answers `{"ok":false,"error":"RateLimited",...}` on the
 * wire. Front-end knobs are new: `--host`/`--port` (port 0 = kernel-
 * assigned, announced on stderr — how scripts avoid port collisions),
 * `--max-connections` (beyond it, connects wait in the TCP backlog),
 * `--idle-timeout` (seconds; quiet connections are closed), and
 * `--max-line` (bytes; longer request lines answer a protocol error).
 *
 * Shutdown: SIGTERM or SIGINT triggers a graceful drain — stop
 * accepting, stop reading, answer and flush everything already
 * admitted, then exit 0 with a stats summary on stderr. The summary
 * includes per-connection and per-tenant service counters.
 *
 * Fleet duty (ISSUE-6): `--warm-from SOURCE` warm-starts the shard's
 * `PlanRegistry` before it starts serving. SOURCE containing a colon
 * is a peer shard's `host:port` — the tool connects, sends one
 * `{"query":"snapshot"}`, and loads the answer; otherwise SOURCE is a
 * file holding snapshot bytes (raw or base64). A warm-started shard
 * compiles zero plans for every config the donor had seen. A SOURCE
 * that cannot be fetched or fails validation is a startup error (exit
 * 2), never a silent cold start. `--drain-deadline SEC` bounds the
 * graceful SIGTERM drain: connections that still owe bytes after the
 * deadline are force-closed (see NetServerConfig::drainDeadlineMs).
 *
 * Observability (ISSUE-8): the front end's `net.*` counters and the
 * service's `serve.*`/`planner.*` counters share one `StatsRegistry`,
 * scrapeable live over the wire with `{"query":"stats"}`. The
 * shutdown summary is that registry rendered by the shared
 * `formatStatsSummary`; `--stats-json PATH` / `--stats-csv PATH`
 * dump the same final snapshot to a file on exit.
 *
 * Usage: ftsim_served [--host H] [--port P] [--max-connections N]
 *                     [--idle-timeout SEC] [--max-line BYTES]
 *                     [--workers N] [--max-answers N] [--max-planners N]
 *                     [--tenant-inflight N] [--tenant-rps X]
 *                     [--tenant-burst X] [--max-tenants N]
 *                     [--warm-from HOST:PORT|FILE]
 *                     [--drain-deadline SEC]
 *                     [--stats-json PATH] [--stats-csv PATH]
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/base64.hpp"
#include "common/logging.hpp"
#include "gpusim/registry_snapshot.hpp"
#include "net/client.hpp"
#include "net/server.hpp"

using namespace ftsim;

namespace {

std::atomic<NetServer*> g_server{nullptr};

/** SIGTERM/SIGINT: requestStop is async-signal-safe by contract
 *  (atomic store + one write(2), no locks). */
void
onSignal(int)
{
    if (NetServer* server = g_server.load())
        server->requestStop();
}

[[noreturn]] void
usage(const std::string& problem)
{
    std::cerr
        << "ftsim_served: " << problem << "\n"
        << "usage: ftsim_served [--host H] [--port P]"
           " [--max-connections N]\n"
        << "                    [--idle-timeout SEC] [--max-line BYTES]\n"
        << "                    [--workers N] [--max-answers N]"
           " [--max-planners N]\n"
        << "                    [--tenant-inflight N] [--tenant-rps X]\n"
        << "                    [--tenant-burst X] [--max-tenants N]\n"
        << "                    [--warm-from HOST:PORT|FILE]"
           " [--drain-deadline SEC]\n"
        << "                    [--stats-json PATH]"
           " [--stats-csv PATH]\n";
    std::exit(2);
}

double
numberArg(const std::string& flag, const char* text)
{
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(value) ||
        value < 0.0)
        usage(strCat(flag, " needs a non-negative finite number, got '",
                     text, "'"));
    return value;
}

/**
 * Fetches warm-start snapshot bytes from @p source: "host:port" asks a
 * peer shard the `snapshot` query; anything else is a file of raw or
 * base64 snapshot bytes.
 */
Result<std::string>
fetchSnapshot(const std::string& source)
{
    const std::size_t colon = source.rfind(':');
    if (colon != std::string::npos) {
        const std::string host = source.substr(0, colon);
        const double port =
            numberArg("--warm-from", source.c_str() + colon + 1);
        if (host.empty() || port < 1.0 || port > 65535.0)
            return Error{ErrorCode::InvalidArgument,
                         strCat("bad peer address '", source, "'")};
        Result<NetClient> client = NetClient::connectTo(
            host, static_cast<std::uint16_t>(port));
        if (!client)
            return client.error();
        Result<std::string> line =
            client.value().ask("{\"query\":\"snapshot\"}");
        if (!line)
            return line.error();
        // The payload is the "snapshot" field's base64 value — no
        // quotes or escapes inside, so a find/slice beats hauling in
        // a response parser for one field.
        const std::string marker = "\"snapshot\":\"";
        const std::size_t begin = line.value().find(marker);
        const std::size_t end =
            begin == std::string::npos
                ? std::string::npos
                : line.value().find('"', begin + marker.size());
        if (begin == std::string::npos || end == std::string::npos)
            return Error{ErrorCode::InvalidArgument,
                         strCat("peer ", source,
                                " answered without a snapshot: ",
                                line.value())};
        return base64Decode(std::string_view(line.value()).substr(
            begin + marker.size(), end - begin - marker.size()));
    }
    std::ifstream file(source, std::ios::binary);
    if (!file)
        return Error{ErrorCode::InvalidArgument,
                     strCat("cannot open snapshot file '", source,
                            "'")};
    std::ostringstream bytes;
    bytes << file.rdbuf();
    std::string content = bytes.str();
    if (content.compare(0, 6, "FTSNAP") == 0)
        return content;  // Raw snapshot bytes.
    // Otherwise base64 text (what a client captured off the wire);
    // tolerate trailing whitespace from shell redirection.
    while (!content.empty() &&
           (content.back() == '\n' || content.back() == '\r' ||
            content.back() == ' '))
        content.pop_back();
    return base64Decode(content);
}

}  // namespace

int
main(int argc, char** argv)
{
    NetServerConfig config;
    std::string warm_from;
    std::string stats_json_path;
    std::string stats_csv_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(strCat(arg, " needs a value"));
            return argv[++i];
        };
        if (arg == "--host") {
            config.host = value();
        } else if (arg == "--port") {
            // Range-check before the uint16_t cast: --port 70000 must
            // be an error, not a silent bind of port 4464.
            const double port = numberArg(arg, value());
            if (port > 65535.0)
                usage(strCat("--port must be 0..65535, got ", port));
            config.port = static_cast<std::uint16_t>(port);
        }
        else if (arg == "--max-connections")
            config.maxConnections =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--idle-timeout")
            config.idleTimeoutMs = numberArg(arg, value()) * 1000.0;
        else if (arg == "--max-line")
            config.maxLineBytes =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--workers")
            config.service.workers =
                static_cast<unsigned>(numberArg(arg, value()));
        else if (arg == "--max-answers")
            config.service.maxAnswers =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--max-planners")
            config.service.maxPlanners =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--tenant-inflight")
            config.service.tenantMaxInflight =
                static_cast<std::uint64_t>(numberArg(arg, value()));
        else if (arg == "--tenant-rps")
            config.service.tenantRps = numberArg(arg, value());
        else if (arg == "--tenant-burst")
            config.service.tenantBurst = numberArg(arg, value());
        else if (arg == "--max-tenants")
            config.service.maxTenants =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--warm-from")
            warm_from = value();
        else if (arg == "--drain-deadline")
            config.drainDeadlineMs = numberArg(arg, value()) * 1000.0;
        else if (arg == "--stats-json")
            stats_json_path = value();
        else if (arg == "--stats-csv")
            stats_csv_path = value();
        else
            usage(strCat("unknown flag ", arg));
    }

    // Socket fds carry the protocol; sim warnings go through stderr.
    Logger::instance().setLevel(LogLevel::Error);

    const std::string host = config.host;
    NetServer server(std::move(config));
    Result<bool> bound = server.bindListener();
    if (!bound) {
        std::cerr << "ftsim_served: " << bound.error().message << '\n';
        return 2;
    }

    // Warm-start before serving (and before the "listening" announce,
    // so scripts that wait for it observe a fully warmed shard).
    if (!warm_from.empty()) {
        Result<std::string> bytes = fetchSnapshot(warm_from);
        if (!bytes) {
            std::cerr << "ftsim_served: --warm-from " << warm_from
                      << ": " << bytes.error().message << '\n';
            return 2;
        }
        Result<SnapshotLoadInfo> loaded = loadRegistrySnapshot(
            *server.service().planRegistry(), bytes.value());
        if (!loaded) {
            std::cerr << "ftsim_served: --warm-from " << warm_from
                      << ": " << loaded.error().message << '\n';
            return 2;
        }
        std::cerr << "ftsim_served: warm-started "
                  << loaded.value().plansLoaded << " plans ("
                  << loaded.value().plansSkipped << " already known) from "
                  << warm_from << '\n';
    }

    g_server.store(&server);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    // Scripts parse this line for the kernel-assigned port (--port 0).
    std::cerr << "ftsim_served: listening on " << host << ':'
              << server.port() << std::endl;
    server.run();
    g_server.store(nullptr);

    const StatsSnapshot snapshot = server.statsRegistry()->snapshot();
    std::cerr << "ftsim_served: drained\n"
              << formatStatsSummary(snapshot, "ftsim_served");
    if (!stats_json_path.empty()) {
        Result<bool> wrote = writeStatsJson(snapshot, stats_json_path);
        if (!wrote) {
            std::cerr << "ftsim_served: " << wrote.error().message
                      << '\n';
            return 2;
        }
    }
    if (!stats_csv_path.empty()) {
        Result<bool> wrote = writeStatsCsv(snapshot, stats_csv_path);
        if (!wrote) {
            std::cerr << "ftsim_served: " << wrote.error().message
                      << '\n';
            return 2;
        }
    }
    return 0;
}
