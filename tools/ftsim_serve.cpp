/**
 * @file
 * `ftsim_serve` — the plan service behind a JSON-lines pipe.
 *
 * Reads one `PlanRequest` per line from a file (or stdin), admits all
 * of them to a concurrent `PlanService`, and prints one `PlanResponse`
 * per line to stdout *in input order* (answers compute out of order;
 * printing re-sequences them). Lines that fail to parse produce an
 * ok=false InvalidArgument response in the same slot and count as
 * protocol errors.
 *
 * A summary (request count, protocol errors, coalescing and latency
 * stats) goes to stderr, and the exit status is non-zero when any
 * protocol error occurred — which lets CI assert "this request file is
 * answered with zero protocol errors" by just running the binary.
 *
 * Usage: ftsim_serve [requests.jsonl|-] [workers]
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    const std::string path = argc > 1 ? argv[1] : "-";
    ServiceConfig config;
    if (argc > 2)
        config.workers =
            static_cast<unsigned>(std::strtoul(argv[2], nullptr, 10));

    std::ifstream file;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::cerr << "ftsim_serve: cannot open " << path << '\n';
            return 2;
        }
    }
    std::istream& in = path == "-" ? std::cin : file;

    // Keep stdout pure protocol; sim warnings go through the logger.
    Logger::instance().setLevel(LogLevel::Error);

    PlanService service(config);

    // Admit everything up front (the service coalesces duplicates),
    // then resolve in input order.
    struct Slot {
        std::string id;
        bool parsed = false;
        std::string parseError;
        std::shared_future<PlanResponse> future;
    };
    std::vector<Slot> slots;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;  // Blank lines are not requests.
        Slot slot;
        Result<PlanRequest> request = parsePlanRequest(line);
        if (request) {
            slot.id = request.value().id;
            slot.parsed = true;
            slot.future = service.submit(request.value());
        } else {
            slot.parseError = request.error().message;
        }
        slots.push_back(std::move(slot));
    }

    std::size_t protocol_errors = 0;
    std::size_t failed_queries = 0;
    for (Slot& slot : slots) {
        if (!slot.parsed) {
            ++protocol_errors;
            ++failed_queries;
            std::cout << writeProtocolError(slot.id, slot.parseError)
                      << '\n';
            continue;
        }
        PlanResponse response = slot.future.get();
        response.id = slot.id;  // Coalesced answers share a future.
        if (!response.ok)
            ++failed_queries;
        std::cout << writePlanResponse(response) << '\n';
    }

    const ServiceStats stats = service.stats();
    std::cerr << "ftsim_serve: " << slots.size() << " lines, "
              << protocol_errors << " protocol errors, "
              << failed_queries << " failed queries\n"
              << "ftsim_serve: requests=" << stats.requests
              << " coalesced=" << stats.coalesced
              << " executed=" << stats.executed
              << " planners=" << stats.plannersCreated
              << " planner_reuses=" << stats.plannerReuses
              << " plans_compiled=" << stats.plansCompiled
              << " steps_simulated=" << stats.stepsSimulated << '\n'
              << "ftsim_serve: latency p50=" << stats.p50LatencyMs
              << "ms p99=" << stats.p99LatencyMs << "ms over "
              << service.workers() << " workers\n";
    return protocol_errors > 0 ? 1 : 0;
}
