/**
 * @file
 * `ftsim_serve` — the plan service behind a JSON-lines pipe.
 *
 * Reads one `PlanRequest` per line from a file (or stdin), admits all
 * of them to a concurrent `PlanService`, and prints one `PlanResponse`
 * per line to stdout *in input order* (answers compute out of order;
 * printing re-sequences them). Lines that fail to parse produce an
 * ok=false InvalidArgument response in the same slot and count as
 * protocol errors.
 *
 * Resource governance maps straight onto `ServiceConfig`:
 * `--max-answers` / `--max-planners` bound the LRU caches, and
 * `--tenant-inflight` / `--tenant-rps` / `--tenant-burst` gate
 * admission per request `tenant`. Quota overflow answers
 * `{"ok":false,"error":"RateLimited",...}` in the request's slot —
 * a quota rejection is a well-formed answer, not a protocol error.
 * Requests are admitted in input order from one thread, so with
 * token-bucket quotas only (`--tenant-rps`, the configuration the e2e
 * golden uses) the rejection pattern is deterministic for a given
 * input. `--tenant-inflight` rejections additionally depend on how
 * fast the workers drain earlier requests — don't bake them into
 * goldens.
 *
 * Observability (ISSUE-8): every counter lives in the service's
 * `StatsRegistry` — including this front end's own `cli.*` rows — so
 * the stderr summary is one registry snapshot rendered by the shared
 * `formatStatsSummary`, identical in shape across ftsim_serve,
 * ftsim_served, and ftsim_router. `--stats-json PATH` /
 * `--stats-csv PATH` dump the same final snapshot to a file on exit,
 * and the exit status is non-zero when any protocol error occurred —
 * which lets CI assert "this request file is answered with zero
 * protocol errors" by just running the binary.
 *
 * Usage: ftsim_serve [requests.jsonl|-] [workers]
 *                    [--workers N] [--max-answers N] [--max-planners N]
 *                    [--tenant-inflight N] [--tenant-rps X]
 *                    [--tenant-burst X] [--max-tenants N]
 *                    [--stats-json PATH] [--stats-csv PATH]
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

namespace {

[[noreturn]] void
usage(const std::string& problem)
{
    std::cerr << "ftsim_serve: " << problem << "\n"
              << "usage: ftsim_serve [requests.jsonl|-] [workers]\n"
              << "                   [--workers N] [--max-answers N]\n"
              << "                   [--max-planners N]"
                 " [--tenant-inflight N]\n"
              << "                   [--tenant-rps X]"
                 " [--tenant-burst X] [--max-tenants N]\n"
              << "                   [--stats-json PATH]"
                 " [--stats-csv PATH]\n";
    std::exit(2);
}

double
numberArg(const std::string& flag, const char* text)
{
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    // isfinite: "nan"/"inf" parse but would silently disable (or
    // un-bound) the quota the operator explicitly asked for.
    if (end == text || *end != '\0' || !std::isfinite(value) ||
        value < 0.0)
        usage(strCat(flag, " needs a non-negative finite number, got '",
                     text, "'"));
    return value;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string path = "-";
    std::string stats_json_path;
    std::string stats_csv_path;
    ServiceConfig config;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(strCat(arg, " needs a value"));
            return argv[++i];
        };
        if (arg == "--workers")
            config.workers = static_cast<unsigned>(numberArg(arg, value()));
        else if (arg == "--max-answers")
            config.maxAnswers =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--max-planners")
            config.maxPlanners =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--tenant-inflight")
            config.tenantMaxInflight =
                static_cast<std::uint64_t>(numberArg(arg, value()));
        else if (arg == "--tenant-rps")
            config.tenantRps = numberArg(arg, value());
        else if (arg == "--tenant-burst")
            config.tenantBurst = numberArg(arg, value());
        else if (arg == "--max-tenants")
            config.maxTenants =
                static_cast<std::size_t>(numberArg(arg, value()));
        else if (arg == "--stats-json")
            stats_json_path = value();
        else if (arg == "--stats-csv")
            stats_csv_path = value();
        else if (arg.size() > 2 && arg.compare(0, 2, "--") == 0)
            usage(strCat("unknown flag ", arg));
        else
            positional.push_back(arg);
    }
    if (!positional.empty())
        path = positional[0];
    if (positional.size() > 1)  // Legacy: ftsim_serve FILE WORKERS.
        config.workers = static_cast<unsigned>(
            numberArg("workers", positional[1].c_str()));
    if (positional.size() > 2)
        usage("too many positional arguments");

    std::ifstream file;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::cerr << "ftsim_serve: cannot open " << path << '\n';
            return 2;
        }
    }
    std::istream& in = path == "-" ? std::cin : file;

    // Keep stdout pure protocol; sim warnings go through the logger.
    Logger::instance().setLevel(LogLevel::Error);

    PlanService service(config);

    // Admit everything up front (the service coalesces duplicates),
    // then resolve in input order.
    struct Slot {
        std::string id;
        bool parsed = false;
        std::string parseError;
        std::shared_future<PlanResponse> future;
    };
    std::vector<Slot> slots;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;  // Blank lines are not requests.
        Slot slot;
        Result<PlanRequest> request = parsePlanRequest(line);
        if (request) {
            slot.id = request.value().id;
            slot.parsed = true;
            slot.future = service.submit(request.value());
        } else {
            slot.parseError = request.error().message;
        }
        slots.push_back(std::move(slot));
    }

    // The front end's own ledger lives in the same registry the
    // service publishes into: one snapshot covers the whole process,
    // and a `stats` query through the service sees these rows too.
    StatsRegistry& registry = *service.statsRegistry();
    StatsCounter& lines_read = registry.counter("cli.lines_read");
    StatsCounter& protocol_errors =
        registry.counter("cli.protocol_errors");
    StatsCounter& failed_queries =
        registry.counter("cli.failed_queries");
    lines_read.add(slots.size());
    for (Slot& slot : slots) {
        if (!slot.parsed) {
            protocol_errors.inc();
            failed_queries.inc();
            std::cout << writeProtocolError(slot.id, slot.parseError)
                      << '\n';
            continue;
        }
        PlanResponse response = slot.future.get();
        response.id = slot.id;  // Coalesced answers share a future.
        if (!response.ok)
            failed_queries.inc();
        std::cout << writePlanResponse(response) << '\n';
    }

    const StatsSnapshot snapshot = registry.snapshot();
    std::cerr << formatStatsSummary(snapshot, "ftsim_serve");
    if (!stats_json_path.empty()) {
        Result<bool> wrote = writeStatsJson(snapshot, stats_json_path);
        if (!wrote) {
            std::cerr << "ftsim_serve: " << wrote.error().message
                      << '\n';
            return 2;
        }
    }
    if (!stats_csv_path.empty()) {
        Result<bool> wrote = writeStatsCsv(snapshot, stats_csv_path);
        if (!wrote) {
            std::cerr << "ftsim_serve: " << wrote.error().message
                      << '\n';
            return 2;
        }
    }
    return protocol_errors.load() > 0 ? 1 : 0;
}
