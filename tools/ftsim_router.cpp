/**
 * @file
 * `ftsim_router` — the fleet front door over `ftsim_served` shards.
 *
 * Binds a client-facing port and routes every JSON-lines request to
 * one of the `--shard HOST:PORT` upstreams by consistent-hashing its
 * canonical (tenant-excluded) identity — duplicate requests always
 * land on the same shard, so the fleet coalesces exactly like one big
 * service (src/router/router.hpp has the full contract). Clients speak
 * to the router exactly as they would to a single `ftsim_served`:
 * pipelined lines, answers per connection in request order.
 *
 * The router answers `fleet` queries itself (shard lifecycle states +
 * failover/heal counters); everything else is forwarded byte-verbatim.
 * A shard dying mid-request no longer fails its in-flight requests:
 * they are replayed on the surviving shards (`--retry-budget` attempts
 * each), and with `--reconnect-backoff-ms` the router heartbeats the
 * dead endpoint, warm-starts the rejoiner from survivor snapshots, and
 * returns it to the ring. `--respawn BIN` additionally fork/execs
 * `BIN --host H --port P` to replace the dead worker process — the
 * supervisor mode. See src/router/router.hpp for the full contract.
 *
 * Shutdown mirrors `ftsim_served`: SIGTERM/SIGINT drains gracefully —
 * every forwarded request still answers (or fails typed) and flushes —
 * then exits 0 with a stats summary on stderr (respawned workers are
 * SIGTERM'd too; the supervisor owns them).
 *
 * Observability (ISSUE-8): the router answers `{"query":"stats"}` by
 * scatter-gathering a live scrape across every alive shard and
 * merging it with its own `router.*` registry — one query reads the
 * whole fleet. The shutdown summary is that registry rendered by the
 * shared `formatStatsSummary`; `--stats-json PATH` /
 * `--stats-csv PATH` dump the same final snapshot to a file on exit.
 *
 * Usage: ftsim_router --shard HOST:PORT [--shard HOST:PORT ...]
 *                     [--host H] [--port P] [--max-connections N]
 *                     [--max-line BYTES] [--virtual-nodes N]
 *                     [--retry-budget N] [--deadline-ms N]
 *                     [--reconnect-backoff-ms N]
 *                     [--reconnect-backoff-max-ms N]
 *                     [--heal-timeout-ms N] [--respawn BIN]
 *                     [--stats-json PATH] [--stats-csv PATH]
 */

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.hpp"
#include "router/router.hpp"

using namespace ftsim;

namespace {

std::atomic<RouterServer*> g_router{nullptr};

/** SIGTERM/SIGINT: requestStop is async-signal-safe by contract. */
void
onSignal(int)
{
    if (RouterServer* router = g_router.load())
        router->requestStop();
}

[[noreturn]] void
usage(const std::string& problem)
{
    std::cerr
        << "ftsim_router: " << problem << "\n"
        << "usage: ftsim_router --shard HOST:PORT"
           " [--shard HOST:PORT ...]\n"
        << "                    [--host H] [--port P]"
           " [--max-connections N]\n"
        << "                    [--max-line BYTES] [--virtual-nodes N]\n"
        << "                    [--retry-budget N] [--deadline-ms N]\n"
        << "                    [--reconnect-backoff-ms N]"
           " [--reconnect-backoff-max-ms N]\n"
        << "                    [--heal-timeout-ms N] [--respawn BIN]\n"
        << "                    [--stats-json PATH]"
           " [--stats-csv PATH]\n";
    std::exit(2);
}

double
numberArg(const std::string& flag, const char* text)
{
    char* end = nullptr;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || !std::isfinite(value) ||
        value < 0.0)
        usage(strCat(flag, " needs a non-negative finite number, got '",
                     text, "'"));
    return value;
}

ShardEndpoint
parseShard(const std::string& text)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0)
        usage(strCat("--shard needs HOST:PORT, got '", text, "'"));
    const double port =
        numberArg("--shard", text.c_str() + colon + 1);
    if (port < 1.0 || port > 65535.0)
        usage(strCat("--shard port must be 1..65535, got '", text,
                     "'"));
    ShardEndpoint endpoint;
    endpoint.host = text.substr(0, colon);
    endpoint.port = static_cast<std::uint16_t>(port);
    return endpoint;
}

}  // namespace

int
main(int argc, char** argv)
{
    RouterConfig config;
    std::string stats_json_path;
    std::string stats_csv_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(strCat(arg, " needs a value"));
            return argv[++i];
        };
        if (arg == "--host") {
            config.host = value();
        } else if (arg == "--port") {
            const double port = numberArg(arg, value());
            if (port > 65535.0)
                usage(strCat("--port must be 0..65535, got ", port));
            config.port = static_cast<std::uint16_t>(port);
        } else if (arg == "--shard") {
            config.shards.push_back(parseShard(value()));
        } else if (arg == "--max-connections") {
            config.maxConnections =
                static_cast<std::size_t>(numberArg(arg, value()));
        } else if (arg == "--max-line") {
            config.maxLineBytes =
                static_cast<std::size_t>(numberArg(arg, value()));
        } else if (arg == "--virtual-nodes") {
            config.virtualNodes =
                static_cast<std::size_t>(numberArg(arg, value()));
        } else if (arg == "--retry-budget") {
            config.retryBudget =
                static_cast<std::size_t>(numberArg(arg, value()));
        } else if (arg == "--deadline-ms") {
            config.requestDeadlineMs = numberArg(arg, value());
        } else if (arg == "--reconnect-backoff-ms") {
            config.reconnectBackoffMs = numberArg(arg, value());
        } else if (arg == "--reconnect-backoff-max-ms") {
            config.reconnectBackoffMaxMs = numberArg(arg, value());
        } else if (arg == "--heal-timeout-ms") {
            config.healTimeoutMs = numberArg(arg, value());
        } else if (arg == "--respawn") {
            config.respawnCommand = value();
        } else if (arg == "--stats-json") {
            stats_json_path = value();
        } else if (arg == "--stats-csv") {
            stats_csv_path = value();
        } else {
            usage(strCat("unknown flag ", arg));
        }
    }
    if (config.shards.empty())
        usage("at least one --shard HOST:PORT is required");

    Logger::instance().setLevel(LogLevel::Error);

    const std::string host = config.host;
    RouterServer router(std::move(config));
    Result<bool> bound = router.bindListener();
    if (!bound) {
        std::cerr << "ftsim_router: " << bound.error().message << '\n';
        return 2;
    }
    Result<bool> shards = router.connectShards();
    if (!shards) {
        std::cerr << "ftsim_router: " << shards.error().message
                  << '\n';
        return 2;
    }

    g_router.store(&router);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);

    // Scripts parse this line for the kernel-assigned port (--port 0).
    std::cerr << "ftsim_router: listening on " << host << ':'
              << router.port() << std::endl;
    router.run();
    g_router.store(nullptr);

    const StatsSnapshot snapshot = router.statsRegistry()->snapshot();
    std::cerr << "ftsim_router: drained\n"
              << formatStatsSummary(snapshot, "ftsim_router");
    if (!stats_json_path.empty()) {
        Result<bool> wrote = writeStatsJson(snapshot, stats_json_path);
        if (!wrote) {
            std::cerr << "ftsim_router: " << wrote.error().message
                      << '\n';
            return 2;
        }
    }
    if (!stats_csv_path.empty()) {
        Result<bool> wrote = writeStatsCsv(snapshot, stats_csv_path);
        if (!wrote) {
            std::cerr << "ftsim_router: " << wrote.error().message
                      << '\n';
            return 2;
        }
    }
    return 0;
}
