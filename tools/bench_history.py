#!/usr/bin/env python3
"""Trend-tracked BENCH history: append fresh BENCH_*.json to a ledger.

bench_check.py *gates* each run against the checked-in baselines;
this script *remembers* each run. Every invocation appends one JSON
line to ``bench/history.jsonl``::

    {"sha": "<git HEAD>", "timestamp": "<UTC ISO-8601>",
     "artifacts": {"BENCH_planner": {...}, "BENCH_serve": {...}, ...}}

The file is append-only — lines are never rewritten, so the history
survives baseline refreshes and stays trivially diffable. Raw
wall-clock numbers that the gate deliberately ignores (they vary with
the host) are exactly what the history keeps: across many commits on
the same CI runner class they chart the trend a one-shot gate cannot
see. CI uploads the ledger as a build artifact after appending.

Exit status: 0 after appending; 1 when no BENCH_*.json artifacts were
found (a run that produced nothing must not log a hollow entry).

Usage:
    bench_history.py [--fresh-dir build] [--history bench/history.jsonl]
                     [--sha SHA]
"""

import argparse
import datetime
import glob
import json
import os
import subprocess
import sys


def git_head(repo_root):
    """Current commit SHA, or "unknown" outside a usable git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def main():
    parser = argparse.ArgumentParser(
        description="Append fresh BENCH_*.json artifacts to the "
        "bench history ledger."
    )
    parser.add_argument(
        "--fresh-dir",
        default="build",
        help="directory holding the fresh BENCH_*.json (default: build)",
    )
    parser.add_argument(
        "--history",
        default="bench/history.jsonl",
        help="append-only ledger path (default: bench/history.jsonl)",
    )
    parser.add_argument(
        "--sha",
        default=None,
        help="commit identifier to stamp (default: git rev-parse HEAD)",
    )
    args = parser.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    artifacts = {}
    for path in sorted(glob.glob(os.path.join(args.fresh_dir, "BENCH_*.json"))):
        name = os.path.splitext(os.path.basename(path))[0]
        try:
            with open(path) as f:
                artifacts[name] = json.load(f)
        except (OSError, json.JSONDecodeError) as err:
            print(f"bench_history: skipping {path}: {err}", file=sys.stderr)
    if not artifacts:
        print(
            f"bench_history: no BENCH_*.json under {args.fresh_dir}; "
            "nothing to record",
            file=sys.stderr,
        )
        return 1

    entry = {
        "sha": args.sha if args.sha else git_head(repo_root),
        "timestamp": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
        .replace("+00:00", "Z"),
        "artifacts": artifacts,
    }
    history_dir = os.path.dirname(args.history)
    if history_dir:
        os.makedirs(history_dir, exist_ok=True)
    # One json.dumps per entry keeps each line self-contained: a torn
    # append (or a merge conflict) damages one line, not the ledger.
    with open(args.history, "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(
        f"bench_history: appended {len(artifacts)} artifact(s) "
        f"@ {entry['sha'][:12]} to {args.history}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
