#!/usr/bin/env python3
"""Bench-regression gate: compare fresh BENCH_*.json against baselines.

ci.sh emits BENCH_planner.json / BENCH_serve.json / BENCH_net.json as
build artifacts; this script compares the fresh run against the
checked-in baselines under bench/baselines/ and fails (exit 1) on a
regression, which turns the benches from trajectory *tracking* into a
CI *gate*.

What is compared (and what deliberately is not):

- ``exact`` checks pin deterministic counters — steps simulated, cache
  misses, answer mismatches, trace shape. These must never drift: a
  change is either an intentional protocol/workload change (refresh the
  baseline) or a broken dedup/memoization invariant.
- ``min_ratio`` checks guard relative speedups (coalesced-vs-serial,
  warm-vs-reference). They may regress by at most ``--tolerance``
  (default 25%) before the gate fails. Ratios of two timings taken on
  the same machine in the same run are far more stable than the
  timings themselves.
- Raw wall-clock numbers (``timings_ms``...) are *not* gated: they vary
  with the host and would make the gate flaky. The JSON artifacts keep
  them for trend dashboards.

Refreshing baselines after an intentional change::

    ./ci.sh                       # produces build/BENCH_*.json
    python3 tools/bench_check.py --update
    git add bench/baselines/ && git commit

Tolerance can be widened per run without editing the script:
``BENCH_CHECK_TOLERANCE=0.5 ./ci.sh`` (the env var is the default for
``--tolerance``).

Usage:
    bench_check.py [--fresh-dir build] [--baseline-dir bench/baselines]
                   [--tolerance 0.25] [--update]
"""

import argparse
import json
import os
import sys

# (file, json.path, mode) — mode is "exact" or "min_ratio".
CHECKS = {
    "BENCH_planner.json": [
        ("sweep_configs", "exact"),
        ("gpu_count", "exact"),
        ("planner_stats.steps_simulated", "exact"),
        ("planner_stats.step_cache_misses", "exact"),
        ("speedups_vs_reference.warm_sweep", "min_ratio"),
        ("speedups_vs_reference.cold_sweep_serial", "min_ratio"),
    ],
    "BENCH_serve.json": [
        ("trace_requests", "exact"),
        ("distinct_requests", "exact"),
        ("answer_mismatches", "exact"),
        ("service_stats.executed", "exact"),
        ("service_stats.steps_simulated", "exact"),
        ("speedup_coalesced_vs_serial", "min_ratio"),
        ("eviction_pressure.answer_mismatches", "exact"),
        ("eviction_pressure.answers_cached_peak", "exact"),
        ("eviction_pressure.answers_evicted", "exact"),
    ],
    # BENCH_net.json gates itself inside bench_net_load (non-zero exit
    # on divergence); baseline-compare the deterministic shape anyway
    # when a baseline exists.
    "BENCH_net.json": [
        ("requests", "exact"),
        ("distinct_step_configs", "exact"),
        ("byte_mismatches", "exact"),
        ("failed_connections", "exact"),
        ("service_stats.steps_simulated", "exact"),
        ("service_stats.executed", "exact"),
    ],
    # BENCH_fleet.json also self-gates (bench_fleet_load exits non-zero
    # on divergence); the baseline pins the deterministic fleet shape:
    # sharded coalescing, zero warm-start compiles, zero failures.
    "BENCH_fleet.json": [
        ("requests", "exact"),
        ("distinct_step_configs", "exact"),
        ("byte_mismatches", "exact"),
        ("failed_connections", "exact"),
        ("fleet_stats.steps_simulated", "exact"),
        ("fleet_stats.executed", "exact"),
        ("router_stats.forwarded", "exact"),
        ("router_stats.shard_failures", "exact"),
        ("warm_start.plans_compiled", "exact"),
        ("warm_start.byte_mismatches", "exact"),
    ],
    # BENCH_chaos.json also self-gates (bench_chaos_load exits non-zero
    # on divergence); the baseline pins the deterministic kill/heal
    # ledger: zero wrong answers, zero Unavailable, failover replays
    # exactly the doomed set, one warm rejoin that compiles nothing.
    "BENCH_chaos.json": [
        ("requests", "exact"),
        ("byte_mismatches", "exact"),
        ("doomed", "exact"),
        ("router_stats.retried", "exact"),
        ("router_stats.unavailable", "exact"),
        ("router_stats.deadline_expired", "exact"),
        ("router_stats.healed", "exact"),
        ("rejoin.plans_loaded", "exact"),
        ("rejoin.plans_compiled", "exact"),
    ],
    # BENCH_wire.json also self-gates (bench_wire exits non-zero on a
    # byte mismatch or a binary/JSON speedup below 1.3x); the baseline
    # pins the deterministic trace shape, the zero-mismatch ledger,
    # and the codec speedup ratio.
    "BENCH_wire.json": [
        ("requests_per_mode", "exact"),
        ("distinct_step_configs", "exact"),
        ("byte_mismatches", "exact"),
        ("failed_connections", "exact"),
        ("service_stats.steps_simulated", "exact"),
        ("net_stats.binary_requests", "exact"),
        ("net_stats.wire_poisoned", "exact"),
        ("speedup_binary_vs_json", "min_ratio"),
    ],
    # BENCH_sweep.json also self-gates (bench_sweep exits non-zero on
    # any vectorized-vs-scalar mismatch or a speedup below 1.5x); the
    # baseline pins the catalog shape, the zero-mismatch ledger, and
    # the vectorization speedup ratio.
    "BENCH_sweep.json": [
        ("gpu_count", "exact"),
        ("sweep_lanes", "exact"),
        ("sweep_points", "exact"),
        ("identity.points_compared", "exact"),
        ("identity.mismatches", "exact"),
        ("speedups.vectorized_vs_per_batch", "min_ratio"),
    ],
}


def lookup(doc, path):
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_file(name, fresh_path, baseline_path, tolerance):
    """Returns a list of failure strings (empty = pass)."""
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)

    failures = []
    for path, mode in CHECKS[name]:
        base_value = lookup(baseline, path)
        fresh_value = lookup(fresh, path)
        if base_value is None:
            # Baseline predates the metric: not a regression. The next
            # --update picks it up.
            continue
        if fresh_value is None:
            failures.append(f"{name}:{path}: missing from fresh run "
                            f"(baseline has {base_value})")
            continue
        if mode == "exact":
            if fresh_value != base_value:
                failures.append(
                    f"{name}:{path}: expected {base_value}, "
                    f"got {fresh_value} (exact match required; "
                    f"refresh baselines if intentional)")
        elif mode == "min_ratio":
            floor = base_value * (1.0 - tolerance)
            if fresh_value < floor:
                failures.append(
                    f"{name}:{path}: {fresh_value:.3g} fell below "
                    f"{floor:.3g} (baseline {base_value:.3g} minus "
                    f"{tolerance:.0%} tolerance)")
        else:  # pragma: no cover - table typo guard
            failures.append(f"{name}:{path}: unknown mode {mode}")
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="Compare BENCH_*.json artifacts against baselines")
    parser.add_argument("--fresh-dir", default="build",
                        help="directory with the fresh BENCH_*.json")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory with the checked-in baselines")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_CHECK_TOLERANCE", "0.25")),
        help="allowed relative drop for min_ratio checks "
             "(default 0.25, or $BENCH_CHECK_TOLERANCE)")
    parser.add_argument("--update", action="store_true",
                        help="copy fresh artifacts over the baselines "
                             "instead of checking")
    args = parser.parse_args()

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        updated = 0
        for name in CHECKS:
            fresh_path = os.path.join(args.fresh_dir, name)
            if not os.path.exists(fresh_path):
                print(f"bench_check: skip {name} (no fresh artifact)")
                continue
            with open(fresh_path) as f:
                doc = json.load(f)
            with open(os.path.join(args.baseline_dir, name), "w") as f:
                json.dump(doc, f, indent=2)
                f.write("\n")
            print(f"bench_check: baseline {name} refreshed")
            updated += 1
        return 0 if updated else 1

    failures = []
    checked = 0
    for name in CHECKS:
        fresh_path = os.path.join(args.fresh_dir, name)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"bench_check: skip {name} (no baseline checked in)")
            continue
        if not os.path.exists(fresh_path):
            failures.append(f"{name}: baseline exists but the fresh "
                            f"artifact {fresh_path} is missing")
            continue
        file_failures = check_file(name, fresh_path, baseline_path,
                                   args.tolerance)
        checked += 1
        if file_failures:
            failures.extend(file_failures)
        else:
            print(f"bench_check: {name} within tolerance "
                  f"({args.tolerance:.0%})")

    if failures:
        print("bench_check: REGRESSION", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print("  (intentional change? refresh with: "
              "python3 tools/bench_check.py --update)", file=sys.stderr)
        return 1
    if checked == 0:
        print("bench_check: nothing checked (no baselines?)",
              file=sys.stderr)
        return 1
    print("bench_check: all gates green")
    return 0


if __name__ == "__main__":
    sys.exit(main())
