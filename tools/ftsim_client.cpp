/**
 * @file
 * `ftsim_client` — pipelining client for `ftsim_served`.
 *
 * Reads JSON request lines from a file (or stdin), sends them all
 * down one TCP connection, then reads one response per non-blank
 * request line and prints it to stdout. The server answers each
 * connection in request order, so the pipelined exchange preserves
 * input order — `cat requests.jsonl | ftsim_client - --port P` is
 * the socket-hop equivalent of `ftsim_serve requests.jsonl`, and
 * ci.sh diffs the two against the same golden file.
 *
 * `--wire binary` re-encodes each parseable request as a binary
 * frame (serve/wire.hpp) and decodes binary responses back through
 * the JSON writer before printing — so the *output is byte-identical
 * to the JSON path* and diffs against the same golden. Lines that do
 * not parse are sent as raw JSON (the server answers them with a
 * JSON protocol error either way), which keeps hostile-input
 * fixtures exercising the same error text in both modes.
 *
 * Blank lines are skipped (they are not requests; the server skips
 * them too, so sending them would desynchronize the response count).
 * Exits non-zero when the connection fails or the server closes
 * before every response arrives.
 *
 * `--timeout-ms N` bounds the connect and every send/receive: a downed
 * or wedged server yields a typed error and a non-zero exit instead of
 * blocking forever (ci.sh runs every invocation with a timeout so a
 * hung fixture fails the gate rather than the build).
 *
 * Usage: ftsim_client [requests.jsonl|-] [--host H] [--port P]
 *                     [--timeout-ms N] [--wire json|binary]
 */

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "net/client.hpp"
#include "serve/protocol.hpp"
#include "serve/wire.hpp"

using namespace ftsim;

namespace {

[[noreturn]] void
usage(const std::string& problem)
{
    std::cerr << "ftsim_client: " << problem << "\n"
              << "usage: ftsim_client [requests.jsonl|-]"
                 " [--host H] [--port P] [--timeout-ms N]"
                 " [--wire json|binary]\n";
    std::exit(2);
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string path = "-";
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    double timeoutMs = 0.0;
    bool binary = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(strCat(arg, " needs a value"));
            return argv[++i];
        };
        if (arg == "--host") {
            host = value();
        } else if (arg == "--port") {
            char* end = nullptr;
            const double parsed = std::strtod(value(), &end);
            if (*end != '\0' || parsed < 1.0 || parsed > 65535.0)
                usage("--port needs a port number");
            port = static_cast<std::uint16_t>(parsed);
        } else if (arg == "--wire") {
            const std::string mode = value();
            if (mode == "binary")
                binary = true;
            else if (mode == "json")
                binary = false;
            else
                usage("--wire needs json or binary");
        } else if (arg == "--timeout-ms") {
            char* end = nullptr;
            const double parsed = std::strtod(value(), &end);
            if (*end != '\0' || !std::isfinite(parsed) || parsed < 0.0)
                usage("--timeout-ms needs a non-negative number");
            timeoutMs = parsed;
        } else if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            usage(strCat("unknown flag ", arg));
        } else {
            positional.push_back(arg);
        }
    }
    if (port == 0)
        usage("--port is required");
    if (!positional.empty())
        path = positional[0];
    if (positional.size() > 1)
        usage("too many positional arguments");

    std::ifstream file;
    if (path != "-") {
        file.open(path);
        if (!file) {
            std::cerr << "ftsim_client: cannot open " << path << '\n';
            return 2;
        }
    }
    std::istream& in = path == "-" ? std::cin : file;

    std::vector<std::string> requests;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;  // Blank lines are not requests.
        requests.push_back(line);
    }

    Result<NetClient> connected =
        NetClient::connectTo(host, port, timeoutMs);
    if (!connected) {
        std::cerr << "ftsim_client: " << connected.error().message
                  << '\n';
        return 2;
    }
    NetClient client = std::move(connected.value());

    // Pipeline: all requests out, then all responses back (the server
    // preserves per-connection request order).
    for (const std::string& request : requests) {
        Result<bool> sent = true;
        if (binary) {
            Result<PlanRequest> parsed = parsePlanRequest(request);
            // Parseable lines ride as binary frames; hostile lines
            // go out as raw JSON so the server's error text (and so
            // this tool's output) matches the JSON path exactly.
            sent = parsed.ok()
                       ? client.sendBytes(
                             encodeRequestFrame(parsed.value()))
                       : client.sendLine(request);
        } else {
            sent = client.sendLine(request);
        }
        if (!sent) {
            std::cerr << "ftsim_client: " << sent.error().message
                      << '\n';
            return 1;
        }
    }
    client.finishSending();

    for (std::size_t i = 0; i < requests.size(); ++i) {
        std::string out;
        if (binary) {
            Result<WireFramer::Frame> frame = client.recvFrame();
            if (!frame) {
                std::cerr << "ftsim_client: after " << i << " of "
                          << requests.size() << " responses: "
                          << frame.error().message << '\n';
                return 1;
            }
            if (!frame.value().binary) {
                out = std::move(frame.value().payload);
            } else {
                Result<WireMessage> decoded =
                    decodeWirePayload(frame.value().payload);
                if (!decoded) {
                    std::cerr << "ftsim_client: undecodable frame: "
                              << decoded.error().message << '\n';
                    return 1;
                }
                // Print through the JSON writers: byte-identical to
                // what the JSON path would have produced.
                if (decoded.value().type == WireMsg::Response)
                    out = writePlanResponse(decoded.value().response);
                else
                    out = writeProtocolError(
                        decoded.value().errorId,
                        decoded.value().errorMessage);
            }
        } else {
            Result<std::string> response = client.recvLine();
            if (!response) {
                std::cerr << "ftsim_client: after " << i << " of "
                          << requests.size() << " responses: "
                          << response.error().message << '\n';
                return 1;
            }
            out = std::move(response.value());
        }
        std::cout << out << '\n';
    }
    return 0;
}
