#!/usr/bin/env python3
"""Docs-drift gate: docs/PROTOCOL.md must cover what the code ships.

The spec is normative, so the failure mode to guard against is not a
wrong sentence (tests cannot read prose) but a *missing* one: somebody
adds a QueryKind, an error code, or a wire-format constant and forgets
the spec. This script scrapes the authoritative switch statements and
declarations straight out of the sources:

- query-kind wire names from ``queryKindName`` in serve/protocol.cpp;
- error-code names from ``errorCodeName`` in common/result.cpp;
- wire constants (``kWire*``) and ``WireMsg`` member names from
  serve/wire.hpp;

then fails (exit 1, one line per omission) if docs/PROTOCOL.md does
not mention every single one. Run from the repo root (ci.sh does).

Deliberately dumb: substring presence, no markdown parsing. The spec
can say anything it likes about a name, but it must say *something*.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return f.read()


def switch_body(source, function_name):
    """The text between a function's ``switch`` and its closing brace."""
    start = source.index(function_name)
    start = source.index("switch", start)
    end = source.index("\n}", start)
    return source[start:end]


def query_kinds():
    body = switch_body(read("src/serve/protocol.cpp"), "queryKindName")
    kinds = re.findall(r'return "([a-z_]+)";', body)
    assert kinds, "no query kinds scraped from protocol.cpp"
    return kinds


def error_codes():
    body = switch_body(read("src/common/result.cpp"), "errorCodeName")
    codes = re.findall(r"case ErrorCode::(\w+)", body)
    assert codes, "no error codes scraped from result.cpp"
    return codes


def wire_names():
    header = read("src/serve/wire.hpp")
    names = re.findall(r"constexpr \w+(?:\s\w+)? (kWire\w+)", header)
    assert names, "no kWire constants scraped from wire.hpp"
    enum = header[header.index("enum class WireMsg"):]
    enum = enum[: enum.index("};")]
    members = re.findall(r"^\s+(\w+) = 0x", enum, re.MULTILINE)
    assert members, "no WireMsg members scraped from wire.hpp"
    return names + ["WireMsg::" + m for m in members]


def main():
    spec = read("docs/PROTOCOL.md")
    missing = []
    for kind in query_kinds():
        # Query kinds appear quoted, the way a request line spells them.
        if '"%s"' % kind not in spec:
            missing.append('query kind "%s"' % kind)
    for code in error_codes():
        if code not in spec:
            missing.append("error code %s" % code)
    for name in wire_names():
        if name not in spec:
            missing.append("wire name %s" % name)
    if missing:
        for item in missing:
            print("check_docs: docs/PROTOCOL.md does not mention",
                  item, file=sys.stderr)
        return 1
    print("check_docs: docs/PROTOCOL.md covers every query kind, "
          "error code, and wire name")
    return 0


if __name__ == "__main__":
    sys.exit(main())
