/**
 * @file
 * Example: actually fine-tune a miniature sparse-MoE model end to end —
 * the paper's workflow in miniature: pre-train a dense base, quantize it
 * into QLoRA, fine-tune on a commonsense task, and watch accuracy and
 * expert-load statistics evolve.
 *
 * Run: ./build/examples/finetune_moe
 */

#include <iostream>

#include "common/table.hpp"
#include "core/planner.hpp"
#include "train/imbalance.hpp"
#include "train/pretrain.hpp"
#include "train/trainer.hpp"

using namespace ftsim;

int
main()
{
    // Before training the miniature, ask the Planner what the *real*
    // run would cost — the paper's workflow is exactly this pairing:
    // plan on the analytical models, then fine-tune.
    Planner planner(Scenario::commonsense15k());
    if (Result<CostRow> plan =
            planner.cheapestPlan(GpuSpec::paperGpus())) {
        std::cout << "full-scale plan: " << planner.scenario().describe()
                  << "\n  cheapest GPU " << plan.value().gpuName << " at $"
                  << Table::fmt(plan.value().totalDollars, 1)
                  << " end-to-end\n\n";
    }

    // A miniature Mixtral: attention backbone, 8 SwiGLU experts, top-2
    // routing, QLoRA adapters (rank 4).
    MiniModelConfig cfg = MiniModelConfig::miniMixtral();
    cfg.dModel = 32;
    cfg.nLayers = 2;
    cfg.nHeads = 4;
    cfg.dFf = 64;
    cfg.nExperts = 8;
    cfg.topK = 2;
    cfg.loraRank = 4;

    // The fine-tuning dataset: a scaled-down Commonsense-15k.
    DatasetSpec train_spec = DatasetSpec::commonsense15k();
    train_spec.numQueries = 128;
    train_spec.medianSeqLen = 12.0;
    train_spec.lengthSigma = 0.25;
    Dataset train_set = Dataset::generate(train_spec);

    // Pre-train a dense base on generic text, then quantize to QLoRA.
    std::cout << "pre-training dense base + quantizing to 4-bit...\n";
    Dataset corpus =
        Dataset::generate(DatasetSpec::genericCorpus(256, 14.0));
    auto model = makePretrainedQlora(cfg, corpus, 120, 16, 3e-3,
                                     /*exclude_answers=*/false);
    std::cout << "trainable parameters: "
              << model->numTrainableParameters() << " of "
              << model->numParameters() << " registered tensors\n";

    EvalResult before = evaluateExactMatch(*model, train_set, 16, 64);
    std::cout << "pre-trained exact-match accuracy: " << before.exactMatch
              << "\n\n";

    // Fine-tune with AdamW (the paper's optimizer).
    AdamW optimizer(model->trainableParameters(), 8e-3);
    TrainerOptions options;
    options.batchSize = 16;
    Trainer trainer(*model, optimizer, options);
    for (int epoch = 1; epoch <= 10; ++epoch) {
        EpochStats stats = trainer.trainEpoch(train_set);
        EvalResult eval = evaluateExactMatch(*model, train_set, 16, 64);
        std::cout << "epoch " << epoch << ": loss " << stats.meanLoss
                  << ", exact match " << eval.exactMatch
                  << ", throughput " << stats.queriesPerSecond
                  << " q/s (fwd " << stats.times.forward << "s, bwd "
                  << stats.times.backward << "s, opt "
                  << stats.times.optimizer << "s)\n";
    }

    // Expert load distribution after tuning (the Fig. 11 measurement).
    ExpertLoadProfile load = measureExpertLoad(*model, train_set, 16);
    std::cout << "\nexpert load (avg tokens/query): ";
    for (double v : load.avgTokensPerQuery)
        std::cout << v << ' ';
    std::cout << "\nacross-expert variance: " << load.varianceAcrossExperts
              << '\n';
    return 0;
}
