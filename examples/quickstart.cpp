/**
 * @file
 * Quickstart: estimate the cost of fine-tuning a sparse MoE LLM on a
 * cloud GPU through the Planner API.
 *
 * The whole paper-§V workflow is three objects:
 *
 *   1. `Scenario`   — what run? model + dataset shape + hyper-params
 *                     (one canonical set of defaults; tweak fields or
 *                     chain the `with*` setters).
 *   2. `Planner`    — the queryable facade. Construct it once from the
 *                     scenario and a price catalog; every question
 *                     (max batch, throughput, cost, GPU comparison,
 *                     full report) is a method returning `Result<T>`.
 *   3. `Result<T>`  — value or typed error ("does not fit", "no price
 *                     listed"), so a planning miss is a branch, not a
 *                     process exit.
 *
 * Queries memoize: the cost table below simulates each GPU once, and
 * any later report/sweep on the same planner reuses those steps.
 *
 * Build & run:
 *   cmake -B build -S . && cmake --build build -j
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/planner.hpp"

using namespace ftsim;

int
main()
{
    // 1. Describe the run: sparse Mixtral on the GS/MATH dataset
    //    (14k queries, median 148 tokens, 10 epochs) — the paper's
    //    Table IV scenario, which is exactly the defaults.
    const Scenario scenario = Scenario::gsMath();
    std::cout << "planning: " << scenario.describe() << '\n';

    // 2. One planner answers everything, against the CUDO price list.
    Planner planner(scenario, CloudCatalog::cudoCompute());
    const GpuSpec a40 = GpuSpec::a40();

    // 3. How large a batch fits? (Eq. 1 territory: memory model.)
    const int max_batch = planner.maxBatch(a40).valueOr(0);
    std::cout << scenario.model.name << " on " << a40.name
              << ": max batch size = " << max_batch << '\n';

    // 4. What throughput does that deliver? (GPU simulator.)
    const double qps = planner.throughput(a40).valueOr(0.0);
    std::cout << "estimated throughput: " << qps << " queries/second\n";

    // 5. What does the full fine-tuning run cost? (Cost model.)
    Result<CostEstimate> cost = planner.cost(a40);
    if (cost) {
        std::cout << scenario.epochs << " epochs over "
                  << scenario.numQueries
                  << " queries: " << cost.value().gpuHours
                  << " GPU-hours = $" << cost.value().totalDollars
                  << '\n';
    } else {
        std::cout << "cannot cost " << a40.name << ": "
                  << cost.error().describe() << '\n';
    }

    // 6. Should you rent a different GPU? Ask for the whole
    //    Table IV-style comparison (reuses the steps simulated above).
    std::cout << "\nAll priced GPUs:\n";
    for (const CostRow& row :
         planner.costTable(GpuSpec::paperGpus()).valueOr({})) {
        std::cout << "  " << row.gpuName << ": bsz " << row.maxBatchSize
                  << ", " << row.throughputQps << " q/s, $"
                  << row.totalDollars << '\n';
    }
    Result<CostRow> best = planner.cheapestPlan(GpuSpec::paperGpus());
    if (best)
        std::cout << "cheapest end-to-end: " << best.value().gpuName
                  << '\n';

    PlannerStats stats = planner.stats();
    std::cout << "\n(" << stats.stepsSimulated
              << " step simulations for the whole session, "
              << stats.stepCacheHits << " answered from cache)\n";
    return 0;
}
