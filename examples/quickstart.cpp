/**
 * @file
 * Quickstart: estimate the cost of fine-tuning a sparse MoE LLM on a
 * cloud GPU in ~20 lines of API use.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/pipeline.hpp"

using namespace ftsim;

int
main()
{
    // 1. Pick a model and a GPU from the built-in catalogs.
    const ModelSpec model = ModelSpec::mixtral8x7b();
    const GpuSpec gpu = GpuSpec::a40();

    // 2. How large a batch fits? (Eq. 1 territory: memory model.)
    const std::size_t seq_len = 148;  // Your dataset's median length.
    const int max_batch =
        MemoryModel::maxBatchSize(model, gpu, seq_len, /*sparse=*/true);
    std::cout << model.name << " on " << gpu.name
              << ": max batch size = " << max_batch << '\n';

    // 3. What throughput does that deliver? (GPU simulator.)
    FineTuneSim sim(model, gpu);
    const double qps = sim.throughput(
        static_cast<std::size_t>(max_batch), seq_len, /*sparse=*/true,
        /*length_sigma=*/0.40);
    std::cout << "estimated throughput: " << qps << " queries/second\n";

    // 4. What does the full fine-tuning run cost? (Cost model.)
    CostEstimator estimator(CloudCatalog::cudoCompute());
    CostEstimate cost =
        estimator.estimate(gpu.name, qps, /*num_queries=*/14000.0,
                           /*epochs=*/10.0);
    std::cout << "10 epochs over 14k queries: " << cost.gpuHours
              << " GPU-hours = $" << cost.totalDollars << '\n';

    // 5. Should you rent a different GPU? Ask the pipeline for the
    //    whole Table IV-style comparison.
    std::cout << "\nAll priced GPUs:\n";
    for (const CostRow& row : ExperimentPipeline::costTable(
             model, GpuSpec::paperGpus(), CloudCatalog::cudoCompute(),
             seq_len, true, 14000.0, 10.0)) {
        std::cout << "  " << row.gpuName << ": bsz " << row.maxBatchSize
                  << ", " << row.throughputQps << " q/s, $"
                  << row.totalDollars << '\n';
    }
    return 0;
}
