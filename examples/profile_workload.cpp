/**
 * @file
 * Example: profile a fine-tuning step on the GPU simulator — the
 * Nsight-Compute-style workflow of the paper's characterization study.
 * Shows the stage breakdown, the layer breakdown, and the top MoE
 * kernels with their SM / DRAM utilization for a configuration you
 * pick, via `Planner::profileAt` (sigma 0 = profile the exact length,
 * no padding model).
 *
 * Run: ./build/examples/profile_workload [batch] [seq_len] [sparse01]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/planner.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    const std::size_t batch =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
    const std::size_t seq_len =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 128;
    const bool sparse = argc > 3 ? std::atoi(argv[3]) != 0 : true;

    const Scenario scenario = Scenario{}
                                  .withMedianSeqLen(seq_len)
                                  .withLengthSigma(0.0)
                                  .withSparse(sparse);
    const GpuSpec gpu = GpuSpec::a40();
    Planner planner(scenario);

    const int max_batch = planner.maxBatch(gpu).valueOr(0);
    std::cout << "profiling " << scenario.model.name << " on " << gpu.name
              << ": batch " << batch << ", seq " << seq_len << ", "
              << (sparse ? "sparse (top-2)" : "dense (all 8)")
              << "  [max batch at this config: " << max_batch << "]\n";
    if (static_cast<int>(batch) > max_batch && max_batch > 0)
        std::cout << "warning: this batch would not fit on real "
                     "hardware; simulating anyway.\n";

    Result<StepProfile> profiled = planner.profileAt(gpu, batch);
    if (!profiled) {
        std::cerr << "cannot profile: " << profiled.error().describe()
                  << '\n';
        return 1;
    }
    const StepProfile& p = profiled.value();

    std::cout << "\nstep latency " << p.stepSeconds << " s  ("
              << p.throughputQps << " queries/s, "
              << static_cast<long long>(p.kernelLaunches)
              << " kernel launches)\n";

    Table stages({"Stage", "Seconds", "Share"});
    const double total =
        p.forwardSeconds + p.backwardSeconds + p.optimizerSeconds;
    auto add_stage = [&](const char* name, double secs) {
        stages.addRow({name, Table::fmt(secs, 3),
                       Table::fmt(100.0 * secs / total, 1) + " %"});
    };
    add_stage("forward", p.forwardSeconds);
    add_stage("backward (incl. recompute)", p.backwardSeconds);
    add_stage("optimizer", p.optimizerSeconds);
    std::cout << '\n' << stages.render();

    Table layers({"Layer class", "Seconds"});
    for (const auto& layer : p.byLayer)
        layers.addRow(
            {layerClassName(layer.layer), Table::fmt(layer.seconds, 3)});
    std::cout << '\n' << layers.render();
    std::cout << "MoE share of layer time: "
              << Table::fmt(100.0 * p.moeFractionOfStep(), 1) << " %\n";

    Table kernels({"MoE kernel", "us", "SM %", "DRAM %", "launches"});
    for (const auto& k : p.moeKernels) {
        kernels.addRow({k.name, Table::fmt(k.seconds * 1e6, 0),
                        Table::fmt(k.smUtilPct, 1),
                        Table::fmt(k.dramUtilPct, 1),
                        Table::fmt(static_cast<long long>(k.launches))});
    }
    std::cout << '\n' << kernels.render();
    return 0;
}
