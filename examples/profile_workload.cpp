/**
 * @file
 * Example: profile a fine-tuning step on the GPU simulator — the
 * Nsight-Compute-style workflow of the paper's characterization study.
 * Shows the stage breakdown, the layer breakdown, and the top MoE
 * kernels with their SM / DRAM utilization for a configuration you pick.
 *
 * Run: ./build/examples/profile_workload [batch] [seq_len] [sparse01]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "gpusim/finetune_sim.hpp"
#include "gpusim/memory_model.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    RunConfig config;
    config.batchSize = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
    config.seqLen = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 128;
    config.sparse = argc > 3 ? std::atoi(argv[3]) != 0 : true;

    const ModelSpec model = ModelSpec::mixtral8x7b();
    const GpuSpec gpu = GpuSpec::a40();

    const int max_batch = MemoryModel::maxBatchSize(
        model, gpu, config.seqLen, config.sparse);
    std::cout << "profiling " << model.name << " on " << gpu.name
              << ": batch " << config.batchSize << ", seq "
              << config.seqLen << ", "
              << (config.sparse ? "sparse (top-2)" : "dense (all 8)")
              << "  [max batch at this config: " << max_batch << "]\n";
    if (static_cast<int>(config.batchSize) > max_batch && max_batch > 0)
        std::cout << "warning: this batch would not fit on real "
                     "hardware; simulating anyway.\n";

    FineTuneSim sim(model, gpu);
    StepProfile p = sim.profileStep(config);

    std::cout << "\nstep latency " << p.stepSeconds << " s  ("
              << p.throughputQps << " queries/s, "
              << static_cast<long long>(p.kernelLaunches)
              << " kernel launches)\n";

    Table stages({"Stage", "Seconds", "Share"});
    const double total =
        p.forwardSeconds + p.backwardSeconds + p.optimizerSeconds;
    auto add_stage = [&](const char* name, double secs) {
        stages.addRow({name, Table::fmt(secs, 3),
                       Table::fmt(100.0 * secs / total, 1) + " %"});
    };
    add_stage("forward", p.forwardSeconds);
    add_stage("backward (incl. recompute)", p.backwardSeconds);
    add_stage("optimizer", p.optimizerSeconds);
    std::cout << '\n' << stages.render();

    Table layers({"Layer class", "Seconds"});
    for (const auto& layer : p.byLayer)
        layers.addRow(
            {layerClassName(layer.layer), Table::fmt(layer.seconds, 3)});
    std::cout << '\n' << layers.render();
    std::cout << "MoE share of layer time: "
              << Table::fmt(100.0 * p.moeFractionOfStep(), 1) << " %\n";

    Table kernels({"MoE kernel", "us", "SM %", "DRAM %", "launches"});
    for (const auto& k : p.moeKernels) {
        kernels.addRow({k.name, Table::fmt(k.seconds * 1e6, 0),
                        Table::fmt(k.smUtilPct, 1),
                        Table::fmt(k.dramUtilPct, 1),
                        Table::fmt(static_cast<long long>(k.launches))});
    }
    std::cout << '\n' << kernels.render();
    return 0;
}
