/**
 * @file
 * Example: a capacity/cost planner built on the analytical models — the
 * practitioner tool the paper's §V motivates. One `Planner` fits Eq. 1
 * and Eq. 2 from simulator sweeps (memoized, so re-planning a new
 * budget on the same scenario is free), then answers: for *your*
 * dataset and budget, which GPU should you rent, and what will it cost?
 *
 * Run: ./build/examples/capacity_planner [num_queries] [median_seq] [epochs]
 */

#include <cstdlib>
#include <iostream>

#include "common/parallel.hpp"
#include "common/table.hpp"
#include "core/planner.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    Scenario scenario = Scenario::gsMath().withNumQueries(
        argc > 1 ? std::strtod(argv[1], nullptr) : 50000.0);
    if (argc > 2)
        scenario.withMedianSeqLen(std::strtoul(argv[2], nullptr, 10));
    else
        scenario.withMedianSeqLen(200);
    if (argc > 3)
        scenario.withEpochs(std::strtod(argv[3], nullptr));

    std::cout << "planning: fine-tune " << scenario.describe() << '\n';

    Planner planner(scenario, CloudCatalog::cudoCompute());
    planner.setParallelism(hardwareThreads());

    // Fit the paper's analytical models once from simulator sweeps; the
    // fitted coefficients then answer any what-if instantly (§V-D).
    Result<BatchSizeFit> eq1 = planner.fitBatchSize(
        GpuSpec::paperGpus(), {79, 128, 148, 174, 256});
    if (!eq1) {
        std::cerr << "Eq. 1 fit failed: " << eq1.error().describe()
                  << '\n';
        return 1;
    }
    std::cout << "Eq. 1 fit: C0 = "
              << Table::fmt(eq1.value().model.c0(), 2)
              << ", C1 = " << Table::fmt(eq1.value().model.c1(), 3)
              << " (RMSE " << Table::fmt(eq1.value().rmse, 2) << ")\n";

    // Per-GPU recommendation table, driven by the fitted equations.
    const double model_mem = scenario.model.weightMemoryBytes() / 1e9;
    const double sparsity = scenario.model.sparsity(scenario.sparse);
    Table table({"GPU", "Eq.1 max bsz", "Eq.2 q/s @ max bsz",
                 "GPU-hours", "Cost ($)"});
    std::string best_gpu;
    double best_cost = 1e300;
    for (const GpuSpec& gpu : GpuSpec::paperGpus()) {
        Result<double> rate = planner.catalog().rate(gpu.name);
        if (!rate)
            continue;  // Unpriced GPU: nothing to recommend.
        const int bsz = eq1.value().model.predict(
            gpu.memGB, model_mem,
            static_cast<double>(scenario.medianSeqLen), sparsity);
        if (bsz < 1) {
            table.addRow({gpu.name, "does not fit", "-", "-", "-"});
            continue;
        }
        Result<ThroughputFit> eq2 = planner.fitThroughput(gpu);
        if (!eq2) {
            table.addRow({gpu.name, Table::fmt(
                              static_cast<long long>(bsz)),
                          eq2.error().describe(), "-", "-"});
            continue;
        }
        const double qps = eq2.value().model.predict(
            static_cast<double>(bsz), sparsity);
        Result<CostEstimate> cost = CostEstimator(planner.catalog())
                                        .tryEstimate(gpu.name, qps,
                                                     scenario.numQueries,
                                                     scenario.epochs);
        if (!cost)
            continue;
        table.addRow({gpu.name, Table::fmt(static_cast<long long>(bsz)),
                      Table::fmt(qps, 2),
                      Table::fmt(cost.value().gpuHours, 1),
                      Table::fmt(cost.value().totalDollars, 1)});
        if (cost.value().totalDollars < best_cost) {
            best_cost = cost.value().totalDollars;
            best_gpu = gpu.name;
        }
    }
    std::cout << '\n' << table.render();
    std::cout << "\nrecommendation: rent " << best_gpu << " (~$"
              << Table::fmt(best_cost, 0) << " end-to-end)\n";

    // Cross-check against the simulator-backed plan (not the fitted
    // equations): the cheapest row of the Table IV comparison.
    Result<CostRow> simulated = planner.cheapestPlan(GpuSpec::paperGpus());
    if (simulated)
        std::cout << "simulator cross-check: " << simulated.value().gpuName
                  << " ($" << Table::fmt(simulated.value().totalDollars, 0)
                  << ")\n";
    return 0;
}
