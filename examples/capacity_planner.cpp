/**
 * @file
 * Example: a capacity/cost planner as a *client of the plan service* —
 * the practitioner tool the paper's §V motivates, reworked as the
 * reference `PlanService` client. Instead of looping single `Planner`
 * calls, it batches every question (per-GPU probes, the cost table,
 * what-if budget variants) as `PlanRequest`s, submits them all up
 * front, and lets the service coalesce duplicates, share planners
 * across the what-ifs, and answer concurrently.
 *
 * Run: ./build/examples/capacity_planner [num_queries] [median_seq] [epochs]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "serve/plan_service.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    Scenario scenario = Scenario::gsMath().withNumQueries(
        argc > 1 ? std::strtod(argv[1], nullptr) : 50000.0);
    if (argc > 2)
        scenario.withMedianSeqLen(std::strtoul(argv[2], nullptr, 10));
    else
        scenario.withMedianSeqLen(200);
    if (argc > 3)
        scenario.withEpochs(std::strtod(argv[3], nullptr));

    std::cout << "planning: fine-tune " << scenario.describe() << '\n';

    PlanService service;  // Hardware workers, CUDO prices.

    // Build the whole question batch first: one max-batch and one
    // throughput probe per GPU, the Table IV cost table, and the
    // cheapest plan for three what-if dataset sizes (which all share
    // planners and step caches inside the service).
    const std::vector<GpuSpec> gpus = GpuSpec::paperGpus();
    std::vector<PlanRequest> batch;
    for (const GpuSpec& gpu : gpus) {
        PlanRequest probe;
        probe.query = QueryKind::MaxBatch;
        probe.gpu = gpu.name;
        probe.scenario = scenario;
        probe.id = "maxbatch/" + gpu.name;
        batch.push_back(probe);
        probe.query = QueryKind::Throughput;
        probe.id = "throughput/" + gpu.name;
        batch.push_back(probe);
    }
    PlanRequest table;
    table.query = QueryKind::CostTable;
    table.scenario = scenario;
    table.id = "cost_table";
    batch.push_back(table);
    const std::vector<double> what_if_queries = {
        scenario.numQueries, 4.0 * scenario.numQueries,
        Scenario::openOrca().numQueries};
    for (double queries : what_if_queries) {
        PlanRequest cheapest;
        cheapest.query = QueryKind::CheapestPlan;
        cheapest.scenario = scenario;
        cheapest.scenario.withNumQueries(queries);
        cheapest.id = strCat("cheapest/", queries);
        batch.push_back(cheapest);
    }

    // Submit everything, then collect: the service answers out of
    // order and dedups; futures hand each answer back exactly once.
    std::vector<std::shared_future<PlanResponse>> futures;
    for (const PlanRequest& request : batch)
        futures.push_back(service.submit(request));
    std::vector<PlanResponse> answers;
    for (auto& future : futures)
        answers.push_back(future.get());

    // Per-GPU probe table (slots 0..2*gpus-1, interleaved).
    Table probe_table({"GPU", "max bsz", "q/s @ max bsz"});
    for (std::size_t i = 0; i < gpus.size(); ++i) {
        const PlanResponse& mbs = answers[2 * i];
        const PlanResponse& qps = answers[2 * i + 1];
        probe_table.addRow(
            {gpus[i].name,
             mbs.ok ? Table::fmt(static_cast<long long>(mbs.value))
                    : mbs.errorCode,
             qps.ok ? Table::fmt(qps.value, 2) : qps.errorCode});
    }
    std::cout << '\n' << probe_table.render();

    // The Table IV comparison for the requested budget.
    const PlanResponse& cost_table = answers[2 * gpus.size()];
    if (cost_table.ok) {
        Table rows({"GPU", "max bsz", "q/s", "$/hr", "total $"});
        for (const CostRow& row : cost_table.rows)
            rows.addRow({row.gpuName,
                         Table::fmt(static_cast<long long>(
                             row.maxBatchSize)),
                         Table::fmt(row.throughputQps, 2),
                         Table::fmt(row.dollarsPerHour, 2),
                         Table::fmt(row.totalDollars, 1)});
        std::cout << '\n' << rows.render();
    } else {
        std::cout << "\ncost table failed: " << cost_table.errorCode
                  << ": " << cost_table.errorMessage << '\n';
    }

    // What-if growth: where does the recommendation move as the
    // dataset scales? (All three share one throughput sweep cache.)
    std::cout << '\n';
    for (std::size_t i = 0; i < what_if_queries.size(); ++i) {
        const PlanResponse& best =
            answers[2 * gpus.size() + 1 + i];
        if (best.ok && !best.rows.empty())
            std::cout << "at " << what_if_queries[i]
                      << " queries: rent " << best.rows[0].gpuName
                      << " (~$" << Table::fmt(best.rows[0].totalDollars, 0)
                      << " end-to-end)\n";
        else
            std::cout << "at " << what_if_queries[i]
                      << " queries: no viable plan ("
                      << best.errorCode << ")\n";
    }

    const ServiceStats stats = service.stats();
    std::cout << "\nservice: " << stats.requests << " requests, "
              << stats.coalesced << " coalesced, "
              << stats.plannersCreated << " planners ("
              << stats.plannerReuses << " reuses), "
              << stats.stepsSimulated << " steps simulated, p99 "
              << Table::fmt(stats.p99LatencyMs, 1) << " ms\n";
    // An unplannable scenario (e.g. num_queries 0) is a failed run,
    // same contract as the pre-service version of this example.
    return cost_table.ok ? 0 : 1;
}
