/**
 * @file
 * Example: a capacity/cost planner built on the analytical models — the
 * practitioner tool the paper's §V motivates. Fits Eq. 1 and Eq. 2 from
 * simulator sweeps, then answers: for *your* dataset and budget, which
 * GPU should you rent, and what will it cost?
 *
 * Run: ./build/examples/capacity_planner [num_queries] [median_seq] [epochs]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "core/pipeline.hpp"

using namespace ftsim;

int
main(int argc, char** argv)
{
    const double num_queries =
        argc > 1 ? std::strtod(argv[1], nullptr) : 50000.0;
    const std::size_t median_seq =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
    const double epochs = argc > 3 ? std::strtod(argv[3], nullptr) : 10.0;

    const ModelSpec model = ModelSpec::mixtral8x7b();
    std::cout << "planning: fine-tune " << model.name << " (sparse) on "
              << num_queries << " queries, median length " << median_seq
              << ", " << epochs << " epochs\n";

    // Fit the paper's analytical models once from simulator sweeps; the
    // fitted coefficients then answer any what-if instantly (§V-D).
    BatchSizeFit eq1 = ExperimentPipeline::fitBatchSize(
        model, GpuSpec::paperGpus(), {79, 128, 148, 174, 256});
    std::cout << "Eq. 1 fit: C0 = " << Table::fmt(eq1.model.c0(), 2)
              << ", C1 = " << Table::fmt(eq1.model.c1(), 3) << " (RMSE "
              << Table::fmt(eq1.rmse, 2) << ")\n";

    // Per-GPU recommendation table.
    CostEstimator estimator(CloudCatalog::cudoCompute());
    Table table({"GPU", "Eq.1 max bsz", "Eq.2 q/s @ max bsz",
                 "GPU-hours", "Cost ($)"});
    std::string best_gpu;
    double best_cost = 1e300;
    const double model_mem = model.weightMemoryBytes() / 1e9;
    for (const GpuSpec& gpu : GpuSpec::paperGpus()) {
        if (!estimator.catalog().has(gpu.name))
            continue;
        const int bsz = eq1.model.predict(
            gpu.memGB, model_mem, static_cast<double>(median_seq), 0.25);
        if (bsz < 1) {
            table.addRow({gpu.name, "does not fit", "-", "-", "-"});
            continue;
        }
        ThroughputFit eq2 = ExperimentPipeline::fitThroughput(
            model, gpu, median_seq, {}, 0.40);
        const double qps =
            eq2.model.predict(static_cast<double>(bsz), 0.25);
        CostEstimate cost =
            estimator.estimate(gpu.name, qps, num_queries, epochs);
        table.addRow({gpu.name, Table::fmt(static_cast<long long>(bsz)),
                      Table::fmt(qps, 2), Table::fmt(cost.gpuHours, 1),
                      Table::fmt(cost.totalDollars, 1)});
        if (cost.totalDollars < best_cost) {
            best_cost = cost.totalDollars;
            best_gpu = gpu.name;
        }
    }
    std::cout << '\n' << table.render();
    std::cout << "\nrecommendation: rent " << best_gpu << " (~$"
              << Table::fmt(best_cost, 0) << " end-to-end)\n";
    return 0;
}
